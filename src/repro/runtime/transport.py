"""Shared-memory columnar transport for the sharded runtime.

The PR-2 sharded runner pickled whole packet batches (and whole
:class:`~repro.openflow.pipeline.PipelineResult` lists) through a
``multiprocessing`` pipe per worker per batch — on small batches the
serialisation round-trip dominated the workers' useful work (ROADMAP
"Open items").  This module replaces the payload path with shared
memory; only tiny control messages cross the pipe:

**Packet blocks.**  :class:`PacketBlockCodec` lays a batch out as flat
numpy columns — per field, one ``uint64`` lane per 64 bits of width
(widths from the canonical :func:`repro.packet.headers.transport_schema`)
plus a presence byte when some packet lacks the field.  Identical packet
*objects* (the common case: traces sample a flow pool of shared dicts)
are encoded once and reconstructed once, with a per-packet indirection
column — the columnar twin of pickle's memo, at a fraction of the cost.
The parent encodes the whole batch **once** into one parent-owned block;
each worker reads only its member rows (its member-index array lives in
the same block), so fan-out cost no longer scales with worker count.

**Result blocks.**  Workers encode their
:class:`~repro.openflow.pipeline.PipelineResult` lists columnar into a
worker-owned block: fixed-width columns for flags/metadata, offset+value
columns for the variable-length lists, the final-fields dicts through
the packet codec, applied actions as indices into a tiny per-batch
action vocabulary (pickled in the control reply — distinct actions per
batch are few), and matched entries as ``(table_id, position)``
**entry refs** resolved against each side's own tables.

**Entry refs and the stats return path.**  :class:`EntryIndex` maps
entries to positions in a table's deterministic
``entries_snapshot()`` order.  A worker replica at the same mutation-log
position as the parent agrees on that order (snapshots pickle entries
with their sort keys and replay mutations in program order), so a ref is
a process-independent name for a flow entry.  That makes two things
cheap: the parent rebuilds results whose ``matched_entries`` are its
*own* authoritative :class:`~repro.openflow.flow.FlowEntry` objects, and
each reply carries a :class:`FlowStatsDelta` — per-entry packet/byte
counts the parent folds back into those entries' counters, so flow
stats (the substrate for monitoring) are exact under sharding instead
of marooned in worker replicas.

**Blocks.**  :class:`SharedBlock` wraps one growable
``multiprocessing.shared_memory`` segment owned by its creating process
(grown by re-creating under a fresh name; peers attach lazily via
:class:`BlockAttachments`).  Layouts travel in the control messages as
:class:`Segment` tuples, so readers construct zero-copy numpy views.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Iterable,
    Mapping,
    NamedTuple,
    Sequence,
)

import numpy as np

from repro.openflow.flow import FlowEntry
from repro.openflow.pipeline import PipelineResult
from repro.packet.batch import FieldLanes, PacketBatch
from repro.packet.headers import frame_length, transport_schema

if TYPE_CHECKING:  # runtime.batch imports nothing from here, but the
    # hint stays lazy so module import order never matters
    from repro.runtime.batch import ColumnarOutcomes

#: Smallest block allocated; growth doubles, so churny batch sizes do
#: not thrash the kernel with re-creations.
MIN_BLOCK_BYTES = 1 << 16

_ALIGN = 16


# ----------------------------------------------------------------------
# shared-memory blocks
# ----------------------------------------------------------------------


def ensure_resource_tracker() -> None:
    """Start the resource tracker before forking workers.

    Attaching to a segment registers it with the process's tracker (a
    CPython quirk: attach-only handles register too).  When the tracker
    exists *before* the fork, parent and workers share one tracker, its
    name set deduplicates, and the single owner-side ``unlink``
    unregisters for everyone — no spurious "leaked shared_memory"
    warnings at exit.
    """
    resource_tracker.ensure_running()


class SharedBlock:
    """One growable shared-memory segment owned by this process.

    ``ensure(nbytes)`` re-creates the segment under a fresh name when it
    is too small (shared memory cannot resize in place); the stale
    segment is unlinked immediately — peers still holding it mapped keep
    a valid view until they attach to the new name from the next control
    message.

    **Lifecycle guard.**  Every created segment registers a
    ``weakref.finalize`` unlink callback, so a block abandoned without
    :meth:`close` — an interrupted sharded run, an exception unwinding
    past the owner, a runner that was never closed — is still unlinked
    when the owner object is collected or the interpreter exits, instead
    of lingering in ``/dev/shm`` until reboot.  :meth:`close` remains
    the explicit (idempotent) path and detaches the finalizer.

    **Announced names.**  Finalize guards die with their process: a
    SIGKILLed worker unlinks nothing.  A block constructed with
    ``name_prefix`` therefore creates its segments under deterministic
    names — ``{prefix}g{generation}`` — and exposes the *next* name via
    :meth:`plan` before any byte exists, so the owner can announce it
    to a supervising peer first.  The peer's registry then covers every
    segment the block will ever create, and :func:`unlink_segment`
    cleans up after an unclean death (a planned-but-never-created name
    unlinks as a no-op).
    """

    def __init__(self, name_prefix: str | None = None) -> None:
        self._shm: shared_memory.SharedMemory | None = None
        self._finalizer = None
        self._name_prefix = name_prefix
        self._generation = 0

    @property
    def name(self) -> str:
        assert self._shm is not None, "ensure() before name"
        return self._shm.name

    @property
    def buf(self) -> memoryview:
        assert self._shm is not None, "ensure() before buf"
        return self._shm.buf

    def plan(self, nbytes: int) -> str | None:
        """The segment name :meth:`ensure` would create for ``nbytes``,
        or ``None`` when the current segment already fits.  Only blocks
        constructed with ``name_prefix`` can plan ahead."""
        if self._name_prefix is None:
            return None
        if self._shm is not None and self._shm.size >= nbytes:
            return None
        return f"{self._name_prefix}g{self._generation + 1}"

    def ensure(self, nbytes: int) -> None:
        if self._shm is not None and self._shm.size >= nbytes:
            return
        size = MIN_BLOCK_BYTES
        while size < nbytes:
            size *= 2
        self.close()
        if self._name_prefix is None:
            self._shm = shared_memory.SharedMemory(create=True, size=size)
        else:
            self._generation += 1
            name = f"{self._name_prefix}g{self._generation}"
            try:
                self._shm = shared_memory.SharedMemory(
                    create=True, size=size, name=name
                )
            except FileExistsError:
                # A stale leftover under the same deterministic name
                # (pid reuse after an unclean death): reclaim it.
                unlink_segment(name)
                self._shm = shared_memory.SharedMemory(
                    create=True, size=size, name=name
                )
        self._finalizer = weakref.finalize(
            self, _release_segment, self._shm
        )

    def close(self) -> None:
        """Unlink and unmap the segment (idempotent)."""
        if self._shm is None:
            return
        finalizer, self._finalizer = self._finalizer, None
        self._shm = None
        if finalizer is not None:
            # The finalizer owns the actual unlink+unmap; calling it here
            # runs it exactly once and disarms the at-exit/at-GC copy.
            finalizer()


def _release_segment(shm: shared_memory.SharedMemory) -> None:
    """Unlink then unmap one segment.

    Unlink first: even if unmapping is blocked by a still-alive numpy
    view (``BufferError``), the name is gone and the kernel reclaims the
    memory once the last view dies.
    """
    try:
        shm.unlink()
    except (FileNotFoundError, OSError):  # pragma: no cover - defensive
        pass
    try:
        shm.close()
    except (BufferError, OSError):  # pragma: no cover - defensive
        pass


def unlink_segment(name: str) -> None:
    """Unlink a segment by name on behalf of a dead owner.

    The crash-recovery path: a SIGKILLed worker's finalize guards never
    ran, so the supervising parent unlinks every name in its block
    registry.  Attaching first keeps the shared resource tracker's
    accounting balanced; a name that was announced but never created
    (or already unlinked) is silently a no-op.
    """
    try:
        shm = shared_memory.SharedMemory(name=name)
    except (FileNotFoundError, OSError):
        return
    _release_segment(shm)


class BlockAttachments:
    """Cache of attached (peer-owned) segments, keyed by name."""

    def __init__(self) -> None:
        self._attached: dict[str, shared_memory.SharedMemory] = {}

    def buf(self, name: str) -> memoryview:
        shm = self._attached.get(name)
        if shm is None:
            shm = shared_memory.SharedMemory(name=name)
            self._attached[name] = shm
        return shm.buf

    def close(self) -> None:
        for shm in self._attached.values():
            try:
                shm.close()
            except (BufferError, OSError):  # pragma: no cover - defensive
                pass
        self._attached.clear()


class Segment(NamedTuple):
    """Where one named array lives inside a block."""

    key: str
    dtype: str
    count: int
    offset: int


class BlockWriter:
    """Accumulates named arrays, then lays them out in one block.

    Two-phase on purpose: :attr:`nbytes` sizes the block before any
    byte is written, so one ``ensure`` covers the whole batch.
    """

    def __init__(self) -> None:
        self._arrays: list[tuple[str, np.ndarray]] = []
        self._nbytes = 0

    def put(self, key: str, array: np.ndarray) -> None:
        self._arrays.append((key, array))
        self._nbytes = _aligned(self._nbytes) + array.nbytes

    @property
    def nbytes(self) -> int:
        return max(self._nbytes, 1)

    def write_to(self, buf: memoryview) -> tuple[Segment, ...]:
        segments: list[Segment] = []
        offset = 0
        for key, array in self._arrays:
            offset = _aligned(offset)
            if array.size:
                view = np.frombuffer(
                    buf, dtype=array.dtype, count=array.size, offset=offset
                )
                view[:] = array
            segments.append(
                Segment(key, array.dtype.str, array.size, offset)
            )
            offset += array.nbytes
        return tuple(segments)


class BlockReader:
    """Zero-copy views over a written block."""

    def __init__(
        self, buf: memoryview, segments: Iterable[Segment]
    ) -> None:
        self._buf = buf
        self._segments = {segment.key: segment for segment in segments}

    def get(self, key: str) -> np.ndarray:
        segment = self._segments[key]
        return np.frombuffer(
            self._buf,
            dtype=np.dtype(segment.dtype),
            count=segment.count,
            offset=segment.offset,
        )


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


# ----------------------------------------------------------------------
# packet blocks
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FieldColumn:
    """Layout of one field's columns: lane count and presence flag."""

    name: str
    lanes: int
    has_missing: bool


@dataclass(frozen=True)
class PacketBlockLayout:
    """Decode recipe for one encoded batch of packet-field dicts."""

    prefix: str
    count: int  # packets in the batch
    rows: int  # distinct dicts actually encoded
    fields: tuple[FieldColumn, ...]


class PacketBlockCodec:
    """Columnar codec for batches of ``{field name: int}`` dicts.

    Stateless apart from the schema, so the parent and every worker
    construct their own from :func:`transport_schema` and agree on the
    canonical column order without negotiation.
    """

    def __init__(self, field_bits: Mapping[str, int] | None = None) -> None:
        self.field_bits = dict(
            field_bits if field_bits is not None else transport_schema()
        )

    # -- encode --------------------------------------------------------

    def encode(
        self,
        writer: BlockWriter,
        batch: PacketBatch | Sequence[Mapping[str, int]],
        prefix: str,
    ) -> PacketBlockLayout:
        """Append a batch's columns to the writer; returns the layout.

        Packets that are the *same dict object* are encoded once; the
        ``pick`` column maps batch positions onto distinct rows, and
        :meth:`decode` rebuilds the aliasing — so duplicate-heavy traces
        stay duplicate-heavy (and downstream per-batch memoization keeps
        paying off) without re-serialising every repeat.  A
        :class:`~repro.packet.batch.PacketBatch` is written as-is (its
        columns already have this exact layout); a dict sequence is
        columnarised first.
        """
        if not isinstance(batch, PacketBatch):
            batch = PacketBatch.from_dicts(batch, self.field_bits)
        return self.encode_batch(writer, batch, prefix)

    def encode_batch(
        self, writer: BlockWriter, batch: PacketBatch, prefix: str
    ) -> PacketBlockLayout:
        """Write a columnar batch's pick/lane/presence arrays.

        A sliced view is compacted first, so a chunk of a large event
        ships only the rows it picks — never the whole backing store.
        """
        batch = batch.compacted()
        writer.put(f"{prefix}/pick", batch.pick.astype(np.int32))
        columns: list[FieldColumn] = []
        for name in batch.field_names():
            lanes, present = batch.column(name)
            if present is not None:
                writer.put(f"{prefix}/{name}/present", present)
            for lane_index, lane in enumerate(lanes):
                writer.put(f"{prefix}/{name}/{lane_index}", lane)
            columns.append(FieldColumn(name, len(lanes), present is not None))
        return PacketBlockLayout(
            prefix=prefix,
            count=len(batch),
            rows=batch.rows,
            fields=tuple(columns),
        )

    # -- decode --------------------------------------------------------

    def attach(
        self,
        reader: BlockReader,
        layout: PacketBlockLayout,
        positions: Sequence[int] | None = None,
    ) -> PacketBatch:
        """A :class:`PacketBatch` over (a subset of) an encoded block.

        Only the rows the selected positions actually pick are gathered
        (copied out of the shared segment, so no view outlives the
        caller's frame); dict materialisation stays lazy — this is the
        decode-free worker's entry point.
        """
        prefix = layout.prefix
        pick = reader.get(f"{prefix}/pick")
        if positions is not None:
            pick = pick[np.asarray(positions, dtype=np.int64)]
        needed = np.unique(pick)
        remap = np.zeros(
            int(needed[-1]) + 1 if len(needed) else 1, dtype=np.int64
        )
        remap[needed] = np.arange(len(needed), dtype=np.int64)
        columns: dict[str, FieldLanes] = {}
        for spec in layout.fields:
            lanes = tuple(
                reader.get(f"{prefix}/{spec.name}/{lane_index}")[needed]
                for lane_index in range(spec.lanes)
            )
            present = (
                reader.get(f"{prefix}/{spec.name}/present")[needed]
                if spec.has_missing
                else None
            )
            columns[spec.name] = FieldLanes(lanes, present)
        return PacketBatch.from_columns(
            len(needed), columns, remap[pick.astype(np.int64)]
        )

    def decode(
        self,
        reader: BlockReader,
        layout: PacketBlockLayout,
        positions: Sequence[int] | None = None,
    ) -> list[dict[str, int]]:
        """Rebuild (a subset of) the batch from its columns.

        ``positions``, when given, selects batch positions (e.g. one
        worker's members); every distinct row is still materialised at
        most once and aliased across its duplicates.
        """
        return self.attach(reader, layout, positions).dicts()


# ----------------------------------------------------------------------
# entry refs and flow-stats deltas
# ----------------------------------------------------------------------


class EntryIndex:
    """Bidirectional ``FlowEntry <-> (table_id, position)`` resolver.

    Positions index the table's ``entries_snapshot()`` order, cached per
    table version so per-batch resolution costs O(1) after the first
    touch following a mutation.
    """

    def __init__(self, pipeline: Any) -> None:
        self.pipeline = pipeline
        #: table_id -> (version, entries, id(entry) -> position)
        self._cache: dict[int, tuple[int, tuple[FlowEntry, ...], dict[int, int]]] = {}

    def _state(
        self, table_id: int
    ) -> tuple[int, tuple[FlowEntry, ...], dict[int, int]]:
        table = self.pipeline.table(table_id)
        cached = self._cache.get(table_id)
        if cached is None or cached[0] != table.version:
            entries = _entries_snapshot(table)
            cached = (
                table.version,
                entries,
                {id(entry): i for i, entry in enumerate(entries)},
            )
            self._cache[table_id] = cached
        return cached

    def entries(self, table_id: int) -> tuple[FlowEntry, ...]:
        return self._state(table_id)[1]

    def ref(self, table_id: int, entry: FlowEntry) -> tuple[int, int]:
        # Frozen shared-state tables (runtime/rulestate.py) know each
        # rehydrated entry's sealed position outright — and the sealed
        # order *is* the parent's pinned snapshot order, because any
        # mutation would have thawed the table (entry_position then
        # returns None and the snapshot path below takes over).
        position_of = getattr(
            self.pipeline.table(table_id), "entry_position", None
        )
        if position_of is not None:
            position = position_of(entry)
            if position is not None:
                return (table_id, position)
        return (table_id, self._state(table_id)[2][id(entry)])

    def pin(self) -> dict[int, tuple[FlowEntry, ...]]:
        """Freeze every table's current entry order.

        The parent pins once per batch *before* dispatching it, then
        resolves worker refs against the pinned tuples — a mutation
        landing while replies are in flight cannot skew resolution onto
        a younger table state than the one the workers classified under.
        """
        return {
            table.table_id: self.entries(table.table_id)
            for table in self.pipeline.tables
        }


def _entries_snapshot(table: Any) -> tuple[FlowEntry, ...]:
    snapshot = getattr(table, "entries_snapshot", None)
    if snapshot is not None:
        return snapshot()
    return tuple(table)


@dataclass
class FlowStatsDelta:
    """Per-entry packet/byte counts one worker accrued over one batch,
    keyed by ``(table_id, position)`` entry ref."""

    counts: dict[tuple[int, int], tuple[int, int]] = field(
        default_factory=dict
    )

    @classmethod
    def from_refs(
        cls, refs: Iterable[tuple[tuple[int, int], int]]
    ) -> FlowStatsDelta:
        """Aggregate ``(entry ref, frame bytes)`` pairs (one per
        packet-match pair) into per-entry counts — the single definition
        of the delta semantics, shared by both transports.
        """
        counts: dict[tuple[int, int], tuple[int, int]] = {}
        for key, frame_len in refs:
            packets, byte_count = counts.get(key, (0, 0))
            counts[key] = (packets + 1, byte_count + frame_len)
        return cls(counts=counts)

    @classmethod
    def from_results(
        cls, results: Sequence[PipelineResult], index: EntryIndex
    ) -> FlowStatsDelta:
        """Aggregate one batch's matched entries into a delta.

        Every runtime lookup path records exactly one
        ``FlowStats.record(frame_len)`` per ``(packet, matched entry)``
        pair — the scalar scan, the decomposition, batch memoization,
        microflow hits and megaflow replay all preserve it — so
        occurrence counts over ``matched_entries``, weighted by each
        packet's frame length (``frame_len`` is never rewritten, so
        ``final_fields`` still carries it), *are* the per-entry stats
        delta.
        """
        return cls.from_refs(
            (
                index.ref(table_id, entry),
                frame_length(result.final_fields),
            )
            for result in results
            for table_id, entry in zip(
                result.tables_visited, result.matched_entries
            )
        )

    def apply(
        self, pinned: Mapping[int, tuple[FlowEntry, ...]]
    ) -> tuple[int, int]:
        """Fold the delta into the pinned (parent) entries' counters;
        returns the ``(packets, bytes)`` totals merged."""
        total_packets = 0
        total_bytes = 0
        for (table_id, position), (packets, byte_count) in self.counts.items():
            pinned[table_id][position].stats.add(packets, byte_count)
            total_packets += packets
            total_bytes += byte_count
        return total_packets, total_bytes


# ----------------------------------------------------------------------
# result blocks
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ResultBlockLayout:
    """Decode recipe for one worker's encoded result list.

    ``fields`` is only present when the results were encoded without
    their input packets; with inputs, final fields travel as
    ``overrides`` — per-packet rewrite dicts (usually all empty, so
    effectively free) — and the decoder rebuilds each ``final_fields``
    from the input dict it already holds, exactly like megaflow replay.
    """

    count: int
    fields: PacketBlockLayout | None
    overrides: tuple[dict[str, int] | None, ...] = ()


_RESULT_SENT = 1
_RESULT_DROPPED = 2


def encode_results(
    writer: BlockWriter,
    results: Sequence[PipelineResult],
    index: EntryIndex,
    codec: PacketBlockCodec,
    inputs: Sequence[Mapping[str, int]] | None = None,
) -> tuple[ResultBlockLayout, list, FlowStatsDelta]:
    """Encode a worker's results columnar; returns the layout, the
    per-batch action vocabulary (for the control reply) and the
    flow-stats delta (computed here because the matched-entry refs are
    already in hand).

    ``inputs``, when given, must be the packets the results came from
    (aligned): final fields are then shipped as rewrite overrides
    against them instead of full columns — processing never deletes a
    header field, so ``final_fields`` is always the input plus zero or
    more rewritten/added keys.
    """
    n = len(results)
    frame_lens = [frame_length(result.final_fields) for result in results]
    vocabulary, delta = _encode_core(writer, results, frame_lens, index)
    if inputs is None:
        layout = ResultBlockLayout(
            count=n,
            fields=codec.encode(
                writer, [result.final_fields for result in results], "res/fields"
            ),
        )
    else:
        layout = ResultBlockLayout(
            count=n,
            fields=None,
            overrides=tuple(
                _overrides(result.final_fields, packet)
                for result, packet in zip(results, inputs)
            ),
        )
    return layout, vocabulary, delta


def encode_outcomes(
    writer: BlockWriter,
    outcomes: ColumnarOutcomes,
    index: EntryIndex,
) -> tuple[ResultBlockLayout, list, FlowStatsDelta]:
    """Encode a :class:`~repro.runtime.batch.ColumnarOutcomes` columnar —
    the decode-free worker's reply path.

    Megaflow-hit positions are encoded straight from the cached
    template (flags, ports, matched refs, actions) with the entry's
    recorded rewrite ``overrides``; only wave-classified positions
    (cache misses, whose rows were materialised anyway) diff their
    ``final_fields`` against the input dict.  Frame lengths come from
    the batch's ``frame_len`` lane, so a hit never touches a dict at
    all.
    """
    results: list[PipelineResult] = []
    overrides: list[dict[str, int] | None] = []
    batch = outcomes.batch
    for i, entry in enumerate(outcomes.entries):
        if entry is None:
            result = outcomes.wave_results[i]
            results.append(result)
            overrides.append(_overrides(result.final_fields, batch[i]))
        else:
            results.append(entry.template)
            overrides.append(entry.overrides if entry.overrides else None)
    vocabulary, delta = _encode_core(
        writer, results, outcomes.frame.tolist(), index
    )
    layout = ResultBlockLayout(
        count=len(results), fields=None, overrides=tuple(overrides)
    )
    return layout, vocabulary, delta


def _encode_core(
    writer: BlockWriter,
    results: Sequence[PipelineResult],
    frame_lens: Sequence[int],
    index: EntryIndex,
) -> tuple[list, FlowStatsDelta]:
    """The final-fields-free part of a result encoding: flags, metadata,
    visited tables, ports, matched-entry refs (with the per-packet frame
    lengths feeding the stats delta) and the action vocabulary."""
    n = len(results)
    flags = np.zeros(n, dtype=np.uint8)
    metadata = np.zeros(n, dtype=np.uint64)
    for i, result in enumerate(results):
        if result.sent_to_controller:
            flags[i] |= _RESULT_SENT
        if result.dropped:
            flags[i] |= _RESULT_DROPPED
        metadata[i] = result.metadata
    writer.put("res/flags", flags)
    writer.put("res/metadata", metadata)

    _put_ragged(
        writer,
        "res/tables",
        [result.tables_visited for result in results],
        np.int32,
    )
    _put_ragged(
        writer,
        "res/ports",
        [result.output_ports for result in results],
        np.uint64,
    )

    refs: list[tuple[tuple[int, int], int]] = []
    matched_rows: list[list[int]] = []
    for result, frame_len in zip(results, frame_lens):
        row: list[int] = []
        for table_id, entry in zip(
            result.tables_visited, result.matched_entries
        ):
            ref = index.ref(table_id, entry)
            row.extend(ref)
            refs.append((ref, frame_len))
        matched_rows.append(row)
    _put_ragged(writer, "res/matched", matched_rows, np.int32)

    vocabulary: dict = {}
    action_rows: list[list[int]] = []
    for result in results:
        row = []
        for action in result.applied_actions:
            action_id = vocabulary.get(action)
            if action_id is None:
                action_id = vocabulary[action] = len(vocabulary)
            row.append(action_id)
        action_rows.append(row)
    _put_ragged(writer, "res/actions", action_rows, np.int32)
    return list(vocabulary), FlowStatsDelta.from_refs(refs)


def _overrides(
    final_fields: Mapping[str, int], packet: Mapping[str, int]
) -> dict[str, int] | None:
    if final_fields == packet:  # the common, rewrite-free case
        return None
    get = packet.get
    return {
        name: value
        for name, value in final_fields.items()
        if get(name) != value
    }


def decode_results(
    reader: BlockReader,
    layout: ResultBlockLayout,
    vocabulary: Sequence,
    entry_at: Callable[[int, int], FlowEntry],
    inputs: Sequence[Mapping[str, int]] | None = None,
) -> list[PipelineResult]:
    """Rebuild the results, resolving matched-entry refs through
    ``entry_at`` — on the parent, against the batch-pinned authoritative
    tables, so results reference the parent's own entries.

    ``inputs`` must mirror the encode call: when results were encoded
    against their input packets, pass the same packets (the parent's
    own batch members) and ``final_fields`` is rebuilt as input dict +
    overrides.
    """
    n = layout.count
    flags = reader.get("res/flags")
    metadata = reader.get("res/metadata").tolist()
    tables = _get_ragged(reader, "res/tables", n)
    ports = _get_ragged(reader, "res/ports", n)
    matched = _get_ragged(reader, "res/matched", n)
    actions = _get_ragged(reader, "res/actions", n)
    if layout.fields is not None:
        final_fields = PacketBlockCodec().decode(reader, layout.fields)
    else:
        assert inputs is not None and len(inputs) == n, (
            "results were encoded against their inputs; decoding needs "
            "the same packets"
        )
        final_fields = []
        for packet, overrides in zip(inputs, layout.overrides):
            fields = dict(packet)
            if overrides:
                fields.update(overrides)
            final_fields.append(fields)

    results: list[PipelineResult] = []
    for i in range(n):
        refs = matched[i]
        # Direct construction, mirroring the megaflow replay hot path.
        result = PipelineResult.__new__(PipelineResult)
        result.matched_entries = [
            entry_at(refs[j], refs[j + 1]) for j in range(0, len(refs), 2)
        ]
        result.applied_actions = [
            vocabulary[action_id] for action_id in actions[i]
        ]
        result.output_ports = ports[i]
        result.sent_to_controller = bool(flags[i] & _RESULT_SENT)
        result.dropped = bool(flags[i] & _RESULT_DROPPED)
        result.metadata = metadata[i]
        result.tables_visited = tables[i]
        result.final_fields = final_fields[i]
        results.append(result)
    return results


def _put_ragged(
    writer: BlockWriter,
    key: str,
    rows: Sequence[Sequence[int]],
    dtype: type[np.signedinteger] | type[np.unsignedinteger],
) -> None:
    offsets = np.zeros(len(rows) + 1, dtype=np.int64)
    np.cumsum([len(row) for row in rows], out=offsets[1:])
    writer.put(f"{key}/offsets", offsets)
    writer.put(
        f"{key}/values",
        np.fromiter(
            (value for row in rows for value in row),
            dtype=dtype,
            count=int(offsets[-1]),
        ),
    )


def _get_ragged(reader: BlockReader, key: str, count: int) -> list[list[int]]:
    offsets = reader.get(f"{key}/offsets")
    values = reader.get(f"{key}/values").tolist()
    return [
        values[offsets[i] : offsets[i + 1]] for i in range(count)
    ]
