"""Open-loop streaming front-end: bounded admission, backpressure and
deterministic load shedding over the batched lookup runtimes.

Every runner below this layer is *closed-loop*: callers feed batches as
fast as the pipeline drains them, so offered load can never exceed
capacity.  Production traffic is an arrival process — packets arrive
whether or not the switch is keeping up — and the robustness property
that matters under overload is graceful, *deterministic* degradation
instead of unbounded queue growth.  This module supplies that front-end:

- :class:`ArrivalSchedule` — a seeded open-loop load shape: Poisson,
  bursty or diurnal arrivals expressed as ``("advance", dt)`` +
  ``("packet", fields)`` events on the runtime's
  :class:`~repro.runtime.lifecycle.VirtualClock`.  No wall time
  anywhere (the ``wall-clock-ban`` lint rule holds here too), so every
  overload scenario replays bit-for-bit.
- :class:`AdmissionQueue` — a hard-capacity queue with explicit drop
  policies: *tail-drop* (arrivals beyond capacity are shed on the spot)
  and *deadline-drop* (per-packet deadlines in virtual ticks; entries
  that age out before forming a batch are shed at the next advance).
  The ``bounded-queue`` lint rule pins the hard capacity: every queue
  construction in the runtime must carry a ``maxlen=`` or an explicit
  ``len()`` bound like the ones in :meth:`AdmissionQueue.offer`.
- size-or-deadline **batch formation** feeding the pipelined shard
  transport through ``submit_batch`` / ``collect_any`` behind a bounded
  in-flight window — when the window is full the stream *collects*
  (backpressure) instead of queueing unboundedly.
- a graduated **degradation ladder** under sustained overload: shrink
  the formation deadline, then bypass megaflow capture, then shed at
  admission — each rung deterministic in (seed, schedule, config).

Conservation law (checked by :meth:`StreamReport.assert_conserved`
before :func:`run_stream` returns): every arrival the generator offered
is accounted for exactly once —

    ``admitted == completed + shed``   (packets *and* bytes)

where *admitted* counts every packet offered to the admission
front-end, *completed* counts packets that finished classification, and
*shed* counts every drop (tail, deadline or degrade), each with a
:class:`ShedRecord` in the ledger.

Determinism under faults: the stream never collects opportunistically.
Completions are taken only at *forced* points — a FIFO
``collect_batch`` when the in-flight window is full, and full
``collect_any`` drains before every clock advance (and at end of
stream) where everything outstanding retires at the same virtual tick.
Shed decisions, ladder transitions and latency stamps are therefore
pure functions of (seed, schedule, config): a worker crash mid-stream
replays through the PR-7 supervisor and changes *nothing* in the
report.
"""

from __future__ import annotations

import math
from collections import deque
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any, Protocol, cast

import numpy as np

from repro.filters.rule import RuleSet
from repro.openflow.pipeline import PipelineResult
from repro.packet.batch import PacketBatch
from repro.packet.headers import frame_length
from repro.runtime.lifecycle import FlowRemoved, VirtualClock
from repro.runtime.scenarios import (
    DEFAULT_FLOWS,
    DEFAULT_FRAME_DIST,
    DEFAULT_SEED,
    flow_pool,
    stamp_frame_lengths,
)

#: One schedule event: ``("advance", dt)`` or ``("packet", fields)``.
StreamEvent = tuple[str, object]

#: Shed reasons, in the order the ladder reaches for them.
SHED_REASONS = ("tail", "deadline", "degrade")


# ----------------------------------------------------------------------
# Arrival schedules
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ArrivalSchedule:
    """A replayable open-loop arrival process on the virtual clock.

    ``events`` interleaves ``("advance", dt)`` ticks with
    ``("packet", fields)`` arrivals; several arrivals between two
    advances land on the same tick (a burst).  Time passes *only*
    through the advance events, exactly as in
    :class:`~repro.runtime.batch.Workload`.
    """

    name: str
    description: str
    events: tuple[StreamEvent, ...]

    @property
    def packet_count(self) -> int:
        return sum(1 for event in self.events if event[0] == "packet")

    @property
    def byte_count(self) -> int:
        return sum(
            frame_length(cast(Mapping[str, int], event[1]))
            for event in self.events
            if event[0] == "packet"
        )

    @property
    def duration(self) -> int:
        """Total virtual ticks the schedule spans."""
        return sum(
            cast(int, event[1]) for event in self.events if event[0] == "advance"
        )

    @property
    def offered_load(self) -> float:
        """Mean arrivals per virtual tick."""
        return self.packet_count / max(1, self.duration)


def _interleave(
    trace: Sequence[Mapping[str, int]], gaps: Sequence[int]
) -> tuple[StreamEvent, ...]:
    """Zip a packet trace with per-packet leading gaps into events."""
    events: list[StreamEvent] = []
    for fields, gap in zip(trace, gaps):
        if gap > 0:
            events.append(("advance", int(gap)))
        events.append(("packet", fields))
    return tuple(events)


def poisson_arrivals(
    rule_set: RuleSet,
    packet_count: int = 4096,
    mean_gap: float = 4.0,
    flow_count: int = DEFAULT_FLOWS,
    seed: int = DEFAULT_SEED,
    frame_len: str | int | None = DEFAULT_FRAME_DIST,
) -> ArrivalSchedule:
    """Poisson arrivals: i.i.d. exponential inter-arrival gaps with the
    given mean (in virtual ticks), rounded to integer ticks — a rounded
    gap of zero is a same-tick pair, which is how a Poisson stream
    naturally produces micro-bursts.  Flows are drawn uniformly from
    the rule set's flow pool."""
    if mean_gap <= 0:
        raise ValueError(f"mean_gap must be positive, got {mean_gap}")
    generator, flows = flow_pool(rule_set, flow_count, seed)
    trace = stamp_frame_lengths(
        generator.sample_trace(flows, packet_count), frame_len, seed
    )
    rng = np.random.default_rng(seed ^ 0x0A11)
    gaps = [int(g) for g in np.rint(rng.exponential(mean_gap, size=packet_count))]
    return ArrivalSchedule(
        name="poisson",
        description=(
            f"{packet_count} pkts, exp gaps mean {mean_gap:.1f} ticks "
            f"over {len(flows)} flows"
        ),
        events=_interleave(trace, gaps),
    )


def bursty_arrivals(
    rule_set: RuleSet,
    packet_count: int = 4096,
    mean_burst: float = 16.0,
    burst_gap: float = 48.0,
    flow_count: int = DEFAULT_FLOWS,
    seed: int = DEFAULT_SEED,
    frame_len: str | int | None = DEFAULT_FRAME_DIST,
) -> ArrivalSchedule:
    """Bursty arrivals: geometric burst sizes, every packet of a burst
    on the same tick and from the same flow (temporal *and* flow
    locality), exponential gaps between bursts.  The admission queue's
    worst case — offered load arrives in spikes far above the mean."""
    if mean_burst < 1:
        raise ValueError(f"mean_burst must be >= 1, got {mean_burst}")
    if burst_gap <= 0:
        raise ValueError(f"burst_gap must be positive, got {burst_gap}")
    _, flows = flow_pool(rule_set, flow_count, seed)
    rng = np.random.default_rng(seed ^ 0xB127)
    trace: list[dict[str, int]] = []
    gaps: list[int] = []
    while len(trace) < packet_count:
        size = min(
            int(rng.geometric(1.0 / mean_burst)), packet_count - len(trace)
        )
        flow = flows[int(rng.integers(len(flows)))]
        gap = int(np.rint(rng.exponential(burst_gap)))
        for position in range(size):
            trace.append(flow)
            gaps.append(gap if position == 0 else 0)
    stamped = stamp_frame_lengths(trace, frame_len, seed)
    return ArrivalSchedule(
        name="bursty",
        description=(
            f"{packet_count} pkts in ~{mean_burst:.0f}-pkt same-tick "
            f"bursts, exp inter-burst gap {burst_gap:.0f} ticks"
        ),
        events=_interleave(stamped, gaps),
    )


def diurnal_arrivals(
    rule_set: RuleSet,
    packet_count: int = 4096,
    base_gap: float = 6.0,
    amplitude: float = 0.8,
    period: int = 2048,
    flow_count: int = DEFAULT_FLOWS,
    seed: int = DEFAULT_SEED,
    frame_len: str | int | None = DEFAULT_FRAME_DIST,
) -> ArrivalSchedule:
    """Diurnal arrivals: the mean inter-arrival gap follows a sinusoid
    over virtual time — troughs (short gaps) model the daily peak where
    offered load can exceed capacity, crests model the quiet valley.
    ``amplitude`` in [0, 1) scales the swing around ``base_gap``."""
    if base_gap <= 0:
        raise ValueError(f"base_gap must be positive, got {base_gap}")
    if not 0 <= amplitude < 1:
        raise ValueError(f"amplitude must be in [0, 1), got {amplitude}")
    if period < 2:
        raise ValueError(f"period must be >= 2 ticks, got {period}")
    generator, flows = flow_pool(rule_set, flow_count, seed)
    trace = stamp_frame_lengths(
        generator.sample_trace(flows, packet_count), frame_len, seed
    )
    rng = np.random.default_rng(seed ^ 0xD1A1)
    gaps: list[int] = []
    tick = 0
    for _ in range(packet_count):
        mean = base_gap * (1.0 + amplitude * math.sin(2 * math.pi * tick / period))
        gap = int(np.rint(rng.exponential(mean)))
        gaps.append(gap)
        tick += gap
    return ArrivalSchedule(
        name="diurnal",
        description=(
            f"{packet_count} pkts, sinusoidal mean gap "
            f"{base_gap:.1f}±{amplitude * base_gap:.1f} ticks, "
            f"period {period}"
        ),
        events=_interleave(trace, gaps),
    )


#: Catalog of arrival builders, mirroring ``scenarios.SCENARIOS``.
ARRIVALS = {
    "poisson": poisson_arrivals,
    "bursty": bursty_arrivals,
    "diurnal": diurnal_arrivals,
}


# ----------------------------------------------------------------------
# Admission
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ShedRecord:
    """One shed packet: which arrival, when, why, and how many bytes.

    The tuple of these — the *shed ledger* — is part of the replay
    contract: two runs with the same (seed, schedule, config) produce
    identical ledgers, faults or not.
    """

    index: int
    tick: int
    reason: str
    frame_len: int


@dataclass(frozen=True)
class _Queued:
    """An admitted arrival waiting for batch formation."""

    index: int
    fields: Mapping[str, int]
    enqueue_tick: int
    deadline_tick: int | None
    frame_len: int


class AdmissionQueue:
    """Hard-capacity FIFO between the arrival process and the runners.

    ``policy="tail"`` sheds arrivals that find the queue full;
    ``policy="deadline"`` additionally stamps every admitted packet
    with ``enqueue_tick + deadline`` and sheds entries whose deadline
    passed before they formed a batch (:meth:`expire` — called after
    every clock advance; deadlines are monotone in FIFO order, so the
    expired entries are always a contiguous head prefix).  Capacity is
    *hard* under both policies: occupancy never exceeds it, which is
    what keeps memory bounded when offered load does not relent.
    """

    POLICIES = ("tail", "deadline")

    def __init__(
        self,
        capacity: int,
        policy: str = "tail",
        deadline: int | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if policy not in self.POLICIES:
            raise ValueError(
                f"unknown policy {policy!r}; expected one of {self.POLICIES}"
            )
        if policy == "deadline" and (deadline is None or deadline < 1):
            raise ValueError(
                "deadline policy needs a positive per-packet deadline, "
                f"got {deadline!r}"
            )
        self.capacity = capacity
        self.policy = policy
        self.deadline = deadline if policy == "deadline" else None
        # Hard capacity: every append below is guarded by a
        # len(self._queue) check against self.capacity.
        self._queue: deque[_Queued] = deque()
        self.peak_occupancy = 0

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def head_enqueue_tick(self) -> int | None:
        """Enqueue tick of the oldest waiting packet (None when empty)."""
        return self._queue[0].enqueue_tick if self._queue else None

    def offer(
        self, index: int, fields: Mapping[str, int], tick: int
    ) -> ShedRecord | None:
        """Admit one arrival, or return its tail-drop shed record."""
        frame_len = frame_length(fields)
        if len(self._queue) >= self.capacity:
            return ShedRecord(index, tick, "tail", frame_len)
        deadline_tick = (
            tick + self.deadline if self.deadline is not None else None
        )
        self._queue.append(
            _Queued(index, fields, tick, deadline_tick, frame_len)
        )
        self.peak_occupancy = max(self.peak_occupancy, len(self._queue))
        return None

    def expire(self, tick: int) -> list[ShedRecord]:
        """Shed the head entries whose deadline passed before ``tick``."""
        if self.deadline is None:
            return []
        shed: list[ShedRecord] = []
        while self._queue:
            deadline_tick = self._queue[0].deadline_tick
            if deadline_tick is None or tick <= deadline_tick:
                break
            entry = self._queue.popleft()
            shed.append(
                ShedRecord(entry.index, tick, "deadline", entry.frame_len)
            )
        return shed

    def take(self, limit: int) -> list[_Queued]:
        """Pop up to ``limit`` entries from the head for batch formation."""
        taken: list[_Queued] = []
        while self._queue and len(taken) < limit:
            taken.append(self._queue.popleft())
        return taken


# ----------------------------------------------------------------------
# Stream configuration and the degradation ladder
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class StreamConfig:
    """Knobs for one open-loop run.

    ``capacity``/``policy``/``deadline`` parameterize the
    :class:`AdmissionQueue`.  ``batch_size`` and ``form_deadline``
    drive size-or-deadline batch formation: a batch goes out when
    ``batch_size`` packets are waiting, or when the oldest waiter has
    aged ``form_deadline`` ticks.  ``window`` bounds the pipelined
    in-flight batches (backpressure: a full window forces a FIFO
    collect before the next submit).

    ``service_rate`` declares the pipeline's drain capacity in packets
    per virtual tick, as a token bucket of depth ``batch_size *
    window`` that batch formation spends and every clock advance
    refills.  Virtual time cannot *measure* host throughput (that is
    the wall-clock bench's job), so overload — offered load exceeding
    capacity — is declared here; ``None`` means unlimited drain, under
    which the queue can only back up through same-tick bursts.

    The ladder fields set where sustained overload (occupancy >=
    ``high_watermark * capacity`` for ``degrade_after`` consecutive
    advances per rung) starts shrinking the formation deadline
    (rung 1), bypassing megaflow capture (rung 2) and shedding at
    admission above ``shed_target * capacity`` (rung 3); occupancy
    below ``low_watermark * capacity`` resets the ladder.
    """

    capacity: int = 512
    batch_size: int = 64
    form_deadline: int = 8
    window: int = 4
    policy: str = "tail"
    deadline: int | None = None
    columnar: bool = False
    service_rate: float | None = None
    degrade_after: int = 4
    high_watermark: float = 0.75
    low_watermark: float = 0.25
    shed_target: float = 0.5

    @property
    def service_burst(self) -> float:
        """Token-bucket depth: the most service the pipeline can owe at
        once — one full in-flight window of batches."""
        return float(self.batch_size * self.window)

    def __post_init__(self) -> None:
        if self.service_rate is not None and self.service_rate <= 0:
            raise ValueError(
                f"service_rate must be positive, got {self.service_rate}"
            )
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.form_deadline < 1:
            raise ValueError(
                f"form_deadline must be >= 1, got {self.form_deadline}"
            )
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if self.degrade_after < 1:
            raise ValueError(
                f"degrade_after must be >= 1, got {self.degrade_after}"
            )
        if not 0 < self.low_watermark < self.high_watermark <= 1:
            raise ValueError(
                "need 0 < low_watermark < high_watermark <= 1, got "
                f"{self.low_watermark} / {self.high_watermark}"
            )
        if not 0 < self.shed_target <= 1:
            raise ValueError(
                f"shed_target must be in (0, 1], got {self.shed_target}"
            )


@dataclass
class _Ladder:
    """Graduated degradation state, stepped once per clock advance.

    The overload *streak* counts consecutive advances that ended with
    occupancy at or above the high watermark; it resets below the low
    watermark and holds steady in between (hysteresis).  The rung is a
    pure function of the streak — ``min(3, streak // degrade_after)``
    — so the whole ladder is deterministic in the schedule.
    """

    config: StreamConfig
    streak: int = 0
    level: int = 0
    max_level: int = 0
    transitions: list[tuple[int, int]] = field(default_factory=list)

    def step(self, occupancy: int, tick: int) -> None:
        cfg = self.config
        if occupancy >= cfg.high_watermark * cfg.capacity:
            self.streak += 1
        elif occupancy < cfg.low_watermark * cfg.capacity:
            self.streak = 0
        level = min(3, self.streak // cfg.degrade_after)
        if level != self.level:
            self.level = level
            self.transitions.append((tick, level))
            self.max_level = max(self.max_level, level)

    @property
    def form_deadline(self) -> int:
        """Rung 1: halve the formation deadline to drain sooner."""
        if self.level < 1:
            return self.config.form_deadline
        return max(1, self.config.form_deadline // 2)

    @property
    def bypass_megaflow(self) -> bool:
        """Rung 2: stop paying megaflow capture/install on the miss
        path (observationally invisible — results never change)."""
        return self.level >= 2

    @property
    def shedding(self) -> bool:
        """Rung 3: shed arrivals at admission above the shed target."""
        return self.level >= 3


# ----------------------------------------------------------------------
# Transports
# ----------------------------------------------------------------------

#: Completions returned by a transport call: the queue entries of one
#: batch paired with that batch's per-packet results.
_Completion = tuple[list[_Queued], list[PipelineResult]]


class StreamableRunner(Protocol):
    """What :func:`run_stream` needs from a runner: the single-process
    :class:`~repro.runtime.batch.BatchPipeline` surface.  Runners that
    also expose ``submit_batch``/``collect_any`` (the sharded pipeline)
    are driven through the pipelined transport instead."""

    @property
    def clock(self) -> VirtualClock: ...

    def advance_clock(self, dt: int) -> list[FlowRemoved]: ...

    def process_batch(self, batch: Any) -> list[PipelineResult]: ...


def _materialize(
    entries: Sequence[_Queued], columnar: bool
) -> list[Mapping[str, int]] | PacketBatch:
    fields = [entry.fields for entry in entries]
    if columnar:
        return PacketBatch.from_dicts(fields)
    return fields


class _InlineTransport:
    """Synchronous facade: a submitted batch is classified on the spot,
    but its completion is *buffered* until the next drain point — the
    identical points where the pipelined transport retires work — so
    latency stamps are transport-independent by construction."""

    def __init__(self, runner: Any, columnar: bool) -> None:
        self._runner = runner
        self._columnar = columnar
        # Flushed at every drain point (each clock advance), so this
        # holds at most one inter-advance interval's batches.
        self._done: list[_Completion] = []
        self.stalls = 0

    def submit(self, entries: list[_Queued], bypass: bool) -> None:
        self._runner.megaflow_bypass = bypass
        try:
            results = self._runner.process_batch(
                _materialize(entries, self._columnar)
            )
        finally:
            self._runner.megaflow_bypass = False
        self._done.append((entries, results))

    def drain(self) -> list[_Completion]:
        completed = self._done
        self._done = []
        return completed


class _PipelinedTransport:
    """Bounded-window facade over ``submit_batch``/``collect_any``.

    Collections happen only at forced points: a FIFO ``collect_batch``
    when the in-flight window is full (counted in :attr:`stalls` —
    that is the backpressure), and a full ``collect_any`` drain at
    every clock advance.  Either way the completions are buffered and
    surfaced only from :meth:`drain`, so completion ticks never depend
    on transport timing.  ``_pending`` preserves submit order,
    mirroring the runner's own FIFO, so the forced collect's results
    always belong to our oldest pending seq.
    """

    def __init__(self, runner: Any, columnar: bool, window: int) -> None:
        self._runner = runner
        self._columnar = columnar
        self.window = max(1, min(window, runner.depth))
        self._pending: dict[int, list[_Queued]] = {}
        # Bounded by the window: a forced collect frees one slot.
        self._done: list[_Completion] = []
        self.stalls = 0

    def submit(self, entries: list[_Queued], bypass: bool) -> None:
        while self._runner.in_flight >= self.window:
            self.stalls += 1
            oldest = next(iter(self._pending))
            results = self._runner.collect_batch()
            self._done.append((self._pending.pop(oldest), results))
        seq = self._runner.submit_batch(
            _materialize(entries, self._columnar), megaflow_bypass=bypass
        )
        self._pending[int(seq)] = entries

    def drain(self) -> list[_Completion]:
        while self._runner.in_flight:
            seq, results = self._runner.collect_any()
            self._done.append((self._pending.pop(int(seq)), results))
        completed = self._done
        self._done = []
        return completed


# ----------------------------------------------------------------------
# The report
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class StreamReport:
    """Everything one open-loop run produced, replay-comparable.

    ``latencies`` holds ``(arrival index, enqueue->completion ticks)``
    sorted by arrival index; ``results`` is aligned with it.  ``shed``
    is the ledger in decision order.  Two runs with identical (seed,
    schedule, config) produce equal reports on every field — that
    equality *is* the determinism contract the chaos and differential
    suites assert.
    """

    schedule: str
    config: StreamConfig
    admitted_packets: int
    admitted_bytes: int
    completed_packets: int
    completed_bytes: int
    shed: tuple[ShedRecord, ...]
    latencies: tuple[tuple[int, int], ...]
    results: tuple[PipelineResult, ...]
    batches: int
    stalls: int
    peak_occupancy: int
    duration: int
    max_level: int
    transitions: tuple[tuple[int, int], ...]
    flow_removed: tuple[FlowRemoved, ...]

    @property
    def shed_packets(self) -> int:
        return len(self.shed)

    @property
    def shed_bytes(self) -> int:
        return sum(record.frame_len for record in self.shed)

    @property
    def shed_by_reason(self) -> dict[str, int]:
        counts = {reason: 0 for reason in SHED_REASONS}
        for record in self.shed:
            counts[record.reason] += 1
        return counts

    @property
    def shed_rate(self) -> float:
        return self.shed_packets / max(1, self.admitted_packets)

    def latency_percentile(self, quantile: float) -> int:
        """Empirical percentile (ceil rank) of the completion latencies,
        in virtual ticks; 0 when nothing completed."""
        if not 0 < quantile <= 1:
            raise ValueError(f"quantile must be in (0, 1], got {quantile}")
        values = sorted(ticks for _, ticks in self.latencies)
        if not values:
            return 0
        rank = max(1, math.ceil(quantile * len(values)))
        return values[min(rank, len(values)) - 1]

    @property
    def p50(self) -> int:
        return self.latency_percentile(0.50)

    @property
    def p99(self) -> int:
        return self.latency_percentile(0.99)

    @property
    def p999(self) -> int:
        return self.latency_percentile(0.999)

    def assert_conserved(self) -> None:
        """The extended conservation law: admitted == completed + shed,
        for packets and bytes."""
        if self.admitted_packets != self.completed_packets + self.shed_packets:
            raise AssertionError(
                f"packet conservation broken: admitted "
                f"{self.admitted_packets} != completed "
                f"{self.completed_packets} + shed {self.shed_packets}"
            )
        if self.admitted_bytes != self.completed_bytes + self.shed_bytes:
            raise AssertionError(
                f"byte conservation broken: admitted {self.admitted_bytes} "
                f"!= completed {self.completed_bytes} + shed "
                f"{self.shed_bytes}"
            )


# ----------------------------------------------------------------------
# The open-loop runner
# ----------------------------------------------------------------------


def run_stream(
    runner: StreamableRunner,
    schedule: ArrivalSchedule,
    config: StreamConfig | None = None,
) -> StreamReport:
    """Drive ``runner`` with ``schedule`` through bounded admission.

    ``runner`` is a single-process
    :class:`~repro.runtime.batch.BatchPipeline` (dict or columnar
    batches per ``config.columnar``) or a
    :class:`~repro.runtime.shard.ShardedBatchPipeline`, whose pipelined
    ``submit_batch``/``collect_any`` transport is used with the
    bounded in-flight window.  Packets left in the queue at end of
    schedule form final batches and complete at the final tick, so the
    conservation law closes exactly; the report is self-checked with
    :meth:`StreamReport.assert_conserved` before returning.
    """
    cfg = config if config is not None else StreamConfig()
    queue = AdmissionQueue(cfg.capacity, policy=cfg.policy, deadline=cfg.deadline)
    transport: _InlineTransport | _PipelinedTransport
    if hasattr(runner, "submit_batch"):
        transport = _PipelinedTransport(runner, cfg.columnar, cfg.window)
    else:
        transport = _InlineTransport(runner, cfg.columnar)
    ladder = _Ladder(cfg)

    tick = runner.clock.now
    start = tick
    admitted_packets = admitted_bytes = 0
    completed_packets = completed_bytes = 0
    shed: list[ShedRecord] = []
    latencies: dict[int, int] = {}
    results: dict[int, PipelineResult] = {}
    removed: list[FlowRemoved] = []
    batches = 0
    index = 0
    #: Service-token bucket (see StreamConfig.service_rate); starts
    #: full — an idle pipeline serves the first burst at line rate.
    credit = cfg.service_burst if cfg.service_rate is not None else math.inf

    def complete(completions: list[_Completion]) -> None:
        nonlocal completed_packets, completed_bytes
        for entries, batch_results in completions:
            for entry, result in zip(entries, batch_results):
                latencies[entry.index] = tick - entry.enqueue_tick
                results[entry.index] = result
                completed_packets += 1
                completed_bytes += entry.frame_len

    def form_and_submit(limit: int) -> None:
        nonlocal batches
        entries = queue.take(limit)
        batches += 1
        transport.submit(entries, ladder.bypass_megaflow)

    def form_ready() -> None:
        """Size-or-deadline batch formation, bounded by service credit:
        full batches whenever ``batch_size`` waiters have tokens, plus
        a partial flush once the head has aged past the (possibly
        ladder-shrunk) formation deadline."""
        nonlocal credit
        while queue.head_enqueue_tick is not None:
            waiting = len(queue)
            due = tick - queue.head_enqueue_tick >= ladder.form_deadline
            if waiting < cfg.batch_size and not due:
                break
            size = min(cfg.batch_size, waiting)
            if credit < size:
                break  # backlog: the pipeline is out of service tokens
            credit -= size
            form_and_submit(size)

    for event in schedule.events:
        kind = event[0]
        if kind == "packet":
            fields = cast(Mapping[str, int], event[1])
            admitted_packets += 1
            admitted_bytes += frame_length(fields)
            if ladder.shedding and len(queue) >= cfg.shed_target * cfg.capacity:
                shed.append(
                    ShedRecord(index, tick, "degrade", frame_length(fields))
                )
            else:
                record = queue.offer(index, fields, tick)
                if record is not None:
                    shed.append(record)
            index += 1
            form_ready()
        elif kind == "advance":
            dt = cast(int, event[1])
            form_ready()
            # Forced drain point: everything outstanding retires at this
            # tick, so the sharded runner is idle for the advance and
            # latency stamps are transport-independent.
            complete(transport.drain())
            removed.extend(runner.advance_clock(dt))
            tick += dt
            if cfg.service_rate is not None:
                credit = min(
                    cfg.service_burst, credit + dt * cfg.service_rate
                )
            shed.extend(queue.expire(tick))
            # Tokens accrued over dt put freshly serviceable batches on
            # the wire now; they retire at the *next* drain point.
            form_ready()
            ladder.step(len(queue), tick)
        else:
            raise ValueError(f"unknown stream event kind {kind!r}")

    # End of schedule: close the books.  The remaining backlog forms
    # final batches regardless of service credit (the conservation law
    # accounts every admitted packet as completed or shed, never
    # "still queued") and everything retires at the final tick.
    while len(queue):
        form_and_submit(cfg.batch_size)
    complete(transport.drain())

    order = sorted(latencies)
    report = StreamReport(
        schedule=schedule.name,
        config=cfg,
        admitted_packets=admitted_packets,
        admitted_bytes=admitted_bytes,
        completed_packets=completed_packets,
        completed_bytes=completed_bytes,
        shed=tuple(shed),
        latencies=tuple((i, latencies[i]) for i in order),
        results=tuple(results[i] for i in order),
        batches=batches,
        stalls=transport.stalls,
        peak_occupancy=queue.peak_occupancy,
        duration=tick - start,
        max_level=ladder.max_level,
        transitions=tuple(ladder.transitions),
        flow_removed=tuple(removed),
    )
    report.assert_conserved()
    return report
