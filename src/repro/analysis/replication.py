"""Field-repetition analysis (what the label method exploits).

The paper's Section IV.B observation: filter sets repeat field values
heavily, so storing each *unique* value once (labelled) instead of once
per rule avoids rule replication.  This module quantifies that repetition
— entries with and without de-duplication — which feeds both the label
ablation experiment and the update-cost model (Fig. 5 compares update
streams with and without the label method).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.unique_values import (
    exact_values,
    partition_unique_entries,
)
from repro.filters.partitions import partition_entries, partition_scheme
from repro.filters.rule import RuleSet
from repro.openflow.fields import REGISTRY, MatchMethod
from repro.openflow.match import RangeMatch, WildcardMatch


@dataclass(frozen=True)
class FieldRepetition:
    """Repetition statistics for one stored structure (field or partition).

    ``total_entries`` counts one entry per rule whose predicate constrains
    this structure (the storage an unlabelled implementation writes);
    ``unique_entries`` counts distinct values (what the label method
    writes).
    """

    structure: str
    total_entries: int
    unique_entries: int

    @property
    def repetition_factor(self) -> float:
        """Average copies per unique value (>= 1 whenever non-empty)."""
        if self.unique_entries == 0:
            return 0.0
        return self.total_entries / self.unique_entries

    @property
    def saving_fraction(self) -> float:
        """Fraction of stored entries the label method eliminates."""
        if self.total_entries == 0:
            return 0.0
        return 1.0 - self.unique_entries / self.total_entries


def repetition_survey(rule_set: RuleSet, part_bits: int = 16) -> list[FieldRepetition]:
    """Per-structure repetition statistics for a rule set."""
    results: list[FieldRepetition] = []
    for field_name in rule_set.field_names:
        method = REGISTRY[field_name].method
        if method is MatchMethod.PREFIX:
            scheme = partition_scheme(field_name, REGISTRY[field_name].bits, part_bits)
            totals = {p.name: 0 for p in scheme}
            for rule in rule_set:
                predicate = rule.fields.get(field_name)
                if predicate is None or isinstance(predicate, WildcardMatch):
                    continue
                for part, entry in zip(scheme, partition_entries(predicate, scheme)):
                    if entry is not None:
                        totals[part.name] += 1
            uniques = partition_unique_entries(rule_set, field_name, part_bits)
            for part in scheme:
                results.append(
                    FieldRepetition(
                        structure=part.name,
                        total_entries=totals[part.name],
                        unique_entries=len(uniques[part.name]),
                    )
                )
        elif method is MatchMethod.EXACT:
            constrained = [
                rule
                for rule in rule_set
                if rule.fields.get(field_name) is not None
                and not isinstance(rule.fields[field_name], WildcardMatch)
            ]
            results.append(
                FieldRepetition(
                    structure=field_name,
                    total_entries=len(constrained),
                    unique_entries=len(exact_values(rule_set, field_name)),
                )
            )
        else:
            ranges = [
                p
                for p in rule_set.field_predicates(field_name)
                if isinstance(p, RangeMatch) and not p.is_full
            ]
            results.append(
                FieldRepetition(
                    structure=field_name,
                    total_entries=len(ranges),
                    unique_entries=len({(p.low, p.high) for p in ranges}),
                )
            )
    return results


def total_repetition(rule_set: RuleSet, part_bits: int = 16) -> FieldRepetition:
    """Aggregate repetition over every structure of a rule set."""
    parts = repetition_survey(rule_set, part_bits)
    return FieldRepetition(
        structure=rule_set.name,
        total_entries=sum(p.total_entries for p in parts),
        unique_entries=sum(p.unique_entries for p in parts),
    )
