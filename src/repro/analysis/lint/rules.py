"""The project's invariant rule set.

Each rule encodes one contract the runtime tests enforce dynamically,
so a new call site that violates it fails CI *statically* instead of
compiling clean until the right property test happens to cover it:

- ``shm-lifecycle`` — shared-memory segments register unlink guards;
- ``finalize-no-self`` — those guards must be able to fire;
- ``frame-len-exclusion`` — ``frame_len`` never enters a key or mask;
- ``hot-path-purity`` — the columnar tiers never materialise dicts;
- ``snapshot-discipline`` — the mutation log is snapshotted once per
  submitted batch, never re-read on the collect side;
- ``dtype-discipline`` — numpy constructions carry explicit dtypes;
- ``blocking-recv-timeout`` — pipe receives stay crash/wedge-aware
  (no bare blocking ``recv()``; readiness waits carry a timeout or a
  process-sentinel wait set);
- ``wall-clock-ban`` — simulation code never reads the wall clock
  (``time.time()`` / ``time.monotonic()`` / ``datetime.now()``); flow
  lifecycle runs on the deterministic :class:`~repro.runtime.lifecycle.VirtualClock`;
- ``bounded-queue`` — every queue declares its capacity: a ``deque``
  carries ``maxlen=`` or a ``len()`` bound check in scope, and lists
  are never used as FIFOs without one (an unbounded admission queue is
  exactly the overload failure mode the streaming layer exists to
  prevent).

Rules are deliberately *syntactic*: they key on the project's naming
contracts (``SharedMemory(create=True)``, the hot-tier method names,
the ``_log`` attribute) rather than attempting type inference, so a
finding is always a one-line read for a reviewer.  False positives are
suppressed inline (``# repro-lint: disable=<rule>``) or per-file in
``repro-lint.toml`` — both reviewable, neither silent.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator

from repro.analysis.lint.core import (
    Finding,
    ModuleContext,
    Rule,
    register,
)

_FuncDef = (ast.FunctionDef, ast.AsyncFunctionDef)


def _callee_name(node: ast.Call) -> str | None:
    """The bare name a call targets: ``foo(...)`` and ``x.y.foo(...)``
    both give ``"foo"``."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _is_numpy_attr(node: ast.expr, name: str) -> bool:
    """True for ``np.<name>`` / ``numpy.<name>``."""
    return (
        isinstance(node, ast.Attribute)
        and node.attr == name
        and isinstance(node.value, ast.Name)
        and node.value.id in ("np", "numpy")
    )


def _walk_scoped(
    tree: ast.Module,
) -> Iterator[tuple[ast.AST, tuple[ast.AST, ...], tuple[ast.ClassDef, ...]]]:
    """Yield every node with its enclosing function and class stacks."""

    def visit(
        node: ast.AST,
        funcs: tuple[ast.AST, ...],
        classes: tuple[ast.ClassDef, ...],
    ) -> Iterator[
        tuple[ast.AST, tuple[ast.AST, ...], tuple[ast.ClassDef, ...]]
    ]:
        for child in ast.iter_child_nodes(node):
            yield child, funcs, classes
            if isinstance(child, _FuncDef):
                yield from visit(child, funcs + (child,), classes)
            elif isinstance(child, ast.ClassDef):
                yield from visit(child, funcs, classes + (child,))
            else:
                yield from visit(child, funcs, classes)

    yield from visit(tree, (), ())


def _mentions_frame_len(node: ast.AST) -> bool:
    """True when the subtree references ``frame_len`` *as data* — the
    name :data:`~repro.packet.headers.FRAME_LEN_FIELD` or the literal
    string — outside a comparison (comparisons are the exclusion idiom:
    ``name != FRAME_LEN_FIELD`` filters it *out* of a key)."""

    def scan(sub: ast.AST, in_compare: bool) -> bool:
        if isinstance(sub, ast.Compare):
            in_compare = True
        if not in_compare:
            if isinstance(sub, ast.Name) and sub.id == "FRAME_LEN_FIELD":
                return True
            if isinstance(sub, ast.Constant) and sub.value == "frame_len":
                return True
        return any(
            scan(child, in_compare) for child in ast.iter_child_nodes(sub)
        )

    return scan(node, False)


@register
class ShmLifecycleRule(Rule):
    """Every created shared-memory segment needs an unlink guard."""

    name = "shm-lifecycle"
    description = (
        "SharedMemory(create=True) must sit in a scope that registers a "
        "weakref.finalize unlink guard or in a class owning a close()/"
        "__exit__ teardown"
    )
    hint = (
        "register weakref.finalize(owner, <unlink fn>, <segment>) next to "
        "the creation, or create through transport.SharedBlock, whose "
        "ensure()/close() own the guard"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node, funcs, classes in _walk_scoped(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if _callee_name(node) != "SharedMemory":
                continue
            if not self._creates(node):
                continue
            if funcs and self._scope_guards(funcs[-1]):
                continue
            if classes and self._class_tears_down(classes[-1]):
                continue
            yield ctx.finding(
                self,
                node,
                "shared-memory segment created without an unlink guard "
                "(abandoned runs would strand it in /dev/shm)",
            )

    @staticmethod
    def _creates(call: ast.Call) -> bool:
        for keyword in call.keywords:
            if keyword.arg == "create":
                value = keyword.value
                return not (
                    isinstance(value, ast.Constant) and value.value is False
                )
        if len(call.args) >= 2:
            value = call.args[1]
            return not (
                isinstance(value, ast.Constant) and value.value is False
            )
        return False  # attach-only (create defaults to False)

    @staticmethod
    def _scope_guards(func: ast.AST) -> bool:
        return any(
            isinstance(sub, ast.Call) and _callee_name(sub) == "finalize"
            for sub in ast.walk(func)
        )

    @staticmethod
    def _class_tears_down(cls: ast.ClassDef) -> bool:
        return any(
            isinstance(member, _FuncDef)
            and member.name in ("close", "__exit__", "__del__")
            for member in cls.body
        )


@register
class FinalizeNoSelfRule(Rule):
    """``weakref.finalize`` guards must be able to fire."""

    name = "finalize-no-self"
    description = (
        "weakref.finalize(owner, ...) must not reference the owner from "
        "its callback or arguments (the finalizer would keep the owner "
        "alive and never run)"
    )
    hint = (
        "pass a module-level function and the resources it releases "
        "(e.g. weakref.finalize(self, _release_segment, self._shm)); "
        "never a bound method of the owner or the owner itself"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if _callee_name(node) != "finalize":
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and not (
                isinstance(func.value, ast.Name)
                and func.value.id == "weakref"
            ):
                continue  # some other object's .finalize()
            if len(node.args) < 2:
                continue
            owner = node.args[0]
            if not isinstance(owner, ast.Name):
                continue
            callback = node.args[1]
            if self._references_owner(callback, owner.id, as_callback=True):
                yield ctx.finding(
                    self,
                    node,
                    f"finalizer callback holds a reference to its owner "
                    f"{owner.id!r}; the guard can never fire",
                )
                continue
            for arg in [*node.args[2:], *(kw.value for kw in node.keywords)]:
                if isinstance(arg, ast.Name) and arg.id == owner.id:
                    yield ctx.finding(
                        self,
                        node,
                        f"finalizer argument is the owner {owner.id!r} "
                        f"itself; the guard can never fire",
                    )
                    break

    @staticmethod
    def _references_owner(
        callback: ast.expr, owner: str, as_callback: bool
    ) -> bool:
        # self.method — the bound method keeps `self` alive.
        if isinstance(callback, ast.Attribute):
            return isinstance(callback.value, ast.Name) and (
                callback.value.id == owner
            )
        # lambda: ...self... — the closure keeps `self` alive.
        if isinstance(callback, ast.Lambda):
            return any(
                isinstance(sub, ast.Name) and sub.id == owner
                for sub in ast.walk(callback.body)
            )
        return False


#: Callees that build cache keys, megaflow masks or shard hashes.
#: ``frame_len`` flowing into any of them breaks either correctness
#: (a per-packet length in an exact-match key splinters every flow)
#: or cache locality (lengths scattering one aggregate across shards).
_KEY_CALLEES = frozenset(
    {
        "key_hashes",
        "packed_keys",
        "probe_keys",
        "masked_packed_keys",
        "packed_masked_key",
        "masked_key",
        "mask_signature",
        "consult",
    }
)

#: Keyword arguments that define match/shard schemas at construction.
_SCHEMA_KEYWORDS = frozenset({"field_names", "shard_fields"})


@register
class FrameLenExclusionRule(Rule):
    """``frame_len`` is switch metadata, never key material."""

    name = "frame-len-exclusion"
    description = (
        "FRAME_LEN_FIELD / 'frame_len' must not flow into cache-key, "
        "megaflow-mask or shard-hash construction"
    )
    hint = (
        "frame lengths feed FlowStats.record and byte accounting only; "
        "filter the field out (name != FRAME_LEN_FIELD) before building "
        "keys, masks or shard schemas"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = _callee_name(node)
            if callee in _KEY_CALLEES:
                for arg in node.args:
                    if _mentions_frame_len(arg):
                        yield ctx.finding(
                            self,
                            arg,
                            f"frame_len flows into {callee}() — it must "
                            f"never be part of a key or mask",
                        )
            for keyword in node.keywords:
                if (
                    keyword.arg in _SCHEMA_KEYWORDS
                    and _mentions_frame_len(keyword.value)
                ):
                    yield ctx.finding(
                        self,
                        keyword.value,
                        f"frame_len appears in the {keyword.arg}= schema — "
                        f"match/shard schemas must exclude it",
                    )


#: Hot functions that must never materialise row dicts *or* construct
#: per-row PipelineResults: the probe/credit tiers, whose whole point is
#: replaying without touching a dict.
_DICT_FREE_HOT = frozenset(
    {
        "lookup_batch_columnar",
        "probe_rows",
        "credit_rows",
        "probe_batch",
        "probe_credit",
    }
)

#: Hot functions whose *miss* path may materialise individual rows
#: (lazily, aliased) but must never bulk-decode the batch.
_DECODE_FREE_HOT = frozenset({"classify_columnar", "encode_outcomes"})

#: Attribute calls that materialise every row of a batch as dicts.
_BULK_MATERIALISERS = frozenset({"dicts", "decode"})


@register
class HotPathPurityRule(Rule):
    """The columnar fast path stays on the lanes."""

    name = "hot-path-purity"
    description = (
        "columnar hot-tier functions (lookup_batch_columnar, probe_rows, "
        "classify_columnar, ...) must not bulk-materialise dicts "
        "(.dicts()/.decode()) nor, in the probe/credit tiers, construct "
        "per-row PipelineResults"
    )
    hint = (
        "stay on the uint64 lanes: aggregate stats from the frame_len "
        "lane, replay megaflow templates, and materialise only miss rows "
        "via fields_at()/row_fields() (lazy, aliased)"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node, funcs, _classes in _walk_scoped(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            hot = next(
                (
                    f.name
                    for f in reversed(funcs)
                    if isinstance(f, _FuncDef)
                    and f.name in (_DICT_FREE_HOT | _DECODE_FREE_HOT)
                ),
                None,
            )
            if hot is None:
                continue
            callee = _callee_name(node)
            if callee in _BULK_MATERIALISERS and isinstance(
                node.func, ast.Attribute
            ):
                yield ctx.finding(
                    self,
                    node,
                    f"{hot}() bulk-materialises dicts via .{callee}() — "
                    f"the columnar fast path must stay on the lanes",
                )
            elif (
                hot in _DICT_FREE_HOT
                and isinstance(node.func, ast.Name)
                and node.func.id == "PipelineResult"
            ):
                yield ctx.finding(
                    self,
                    node,
                    f"{hot}() constructs a PipelineResult per row — the "
                    f"probe/credit tiers replay templates instead",
                )


_COLLECT_SIDE = re.compile(r"collect|drain|reply|decode", re.IGNORECASE)
_DISPATCH_SIDE = re.compile(r"send|submit|dispatch|collect", re.IGNORECASE)


@register
class SnapshotDisciplineRule(Rule):
    """The mutation log is snapshotted once per submitted batch."""

    name = "snapshot-discipline"
    description = (
        "len(..._log) is read at most once per function and never in "
        "collect/drain paths; log slices in dispatch paths must be "
        "bounded by the submission snapshot, not open-ended"
    )
    hint = (
        "snapshot the log length once at submission (under the mutation "
        "lock), carry it with the in-flight batch, and slice/compare "
        "against that snapshot everywhere downstream"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for func in ctx.functions():
            reads = self._direct_reads(func)
            collect_side = bool(_COLLECT_SIDE.search(func.name))
            for i, node in enumerate(reads):
                if collect_side:
                    yield ctx.finding(
                        self,
                        node,
                        f"{func.name}() re-reads the mutation-log length "
                        f"on the collect side — batches must resolve "
                        f"against the length snapshotted at submission",
                    )
                elif i > 0:
                    yield ctx.finding(
                        self,
                        node,
                        f"{func.name}() reads the mutation-log length "
                        f"more than once — a mutator can land between "
                        f"reads, splitting one batch across two table "
                        f"states",
                    )
            if _DISPATCH_SIDE.search(func.name):
                for node in ast.walk(func):
                    if self._open_ended_log_slice(node):
                        yield ctx.finding(
                            self,
                            node,
                            f"{func.name}() ships an open-ended mutation-"
                            f"log slice — bound it by the submission "
                            f"snapshot so every worker catches up to the "
                            f"same point",
                        )

    @staticmethod
    def _is_log_len(node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "len"
            and len(node.args) == 1
            and isinstance(node.args[0], ast.Attribute)
            and node.args[0].attr == "_log"
        )

    @classmethod
    def _direct_reads(cls, func: ast.AST) -> list[ast.Call]:
        """``len(..._log)`` calls in this function, nested defs excluded."""
        reads: list[ast.Call] = []

        def visit(node: ast.AST) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, _FuncDef):
                    continue
                if cls._is_log_len(child):
                    reads.append(child)  # type: ignore[arg-type]
                visit(child)

        visit(func)
        return reads

    @staticmethod
    def _open_ended_log_slice(node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Attribute)
            and node.value.attr == "_log"
            and isinstance(node.slice, ast.Slice)
            and node.slice.upper is None
        )


#: numpy constructors and the positional index their dtype lives at
#: (None = keyword-only in practice for this codebase).
_NP_CONSTRUCTORS: dict[str, int | None] = {
    "zeros": 1,
    "ones": 1,
    "empty": 1,
    "full": 2,
    "array": 1,
    "asarray": 1,
    "ascontiguousarray": 1,
    "fromiter": 1,
    "frombuffer": 1,
    "arange": 3,
}


@register
class DtypeDisciplineRule(Rule):
    """Array constructions say what they mean."""

    name = "dtype-discipline"
    description = (
        "numpy array constructions must carry an explicit dtype (the "
        "uint64 lanes silently promote to float64/object otherwise)"
    )
    hint = (
        "pass dtype= explicitly (np.uint64 for lanes, np.int64 for "
        "indices/picks, np.uint8 for presence bytes)"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = (
                node.func.attr
                if isinstance(node.func, ast.Attribute)
                else None
            )
            if name is None or name not in _NP_CONSTRUCTORS:
                continue
            if not _is_numpy_attr(node.func, name):
                continue
            if any(keyword.arg == "dtype" for keyword in node.keywords):
                continue
            position = _NP_CONSTRUCTORS[name]
            if position is not None and len(node.args) > position:
                continue
            yield ctx.finding(
                self,
                node,
                f"np.{name}(...) without an explicit dtype — the result "
                f"dtype depends on the input and silently promotes",
            )


#: Readiness-guard callees: any call whose name contains one of these
#: marks the enclosing function as wait-aware.  ``wait`` also matches
#: wrappers like ``await_readable``; ``poll`` covers the worker-side
#: ``conn.poll(interval)`` watch loops.
_READINESS_GUARDS = re.compile(r"wait|poll|select", re.IGNORECASE)

#: Receivers whose ``wait()`` is the multiprocessing readiness wait
#: (``connection.wait`` / ``mp_connection.wait``); other objects' .wait
#: methods (events, futures) are out of scope.
_CONNECTION_MODULES = frozenset({"connection", "mp_connection"})


@register
class BlockingRecvTimeoutRule(Rule):
    """Parent/worker pipe waits must be able to observe a dead peer."""

    name = "blocking-recv-timeout"
    description = (
        "a function calling Connection.recv() must also consult a "
        "readiness guard (connection.wait / .poll / a wait wrapper), "
        "and connection.wait() calls must carry a timeout or a "
        "process-sentinel wait set — a bare blocking recv() parks "
        "forever on a crashed or wedged peer"
    )
    hint = (
        "wait on [conn, proc.sentinel] with a timeout before recv() "
        "(see repro.runtime.supervise.await_readable), or guard the "
        "recv with conn.poll(interval) in a loop that can notice the "
        "peer dying"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for func in ctx.functions():
            recvs = [
                node
                for node in ast.walk(func)
                if isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "recv"
            ]
            if recvs and not self._wait_aware(func):
                for node in recvs:
                    yield ctx.finding(
                        self,
                        node,
                        f"{func.name}() blocks in recv() with no "
                        f"readiness guard in scope — a dead or wedged "
                        f"peer parks it forever",
                    )
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if not self._is_connection_wait(node):
                continue
            has_timeout = len(node.args) >= 2 or any(
                keyword.arg == "timeout" for keyword in node.keywords
            )
            if has_timeout or self._mentions_sentinel(node):
                continue
            yield ctx.finding(
                self,
                node,
                "connection.wait() without a timeout or a process "
                "sentinel in its wait set — it cannot observe a "
                "crashed or wedged peer",
            )

    @staticmethod
    def _wait_aware(func: ast.AST) -> bool:
        return any(
            isinstance(node, ast.Call)
            and (name := _callee_name(node)) is not None
            and _READINESS_GUARDS.search(name)
            for node in ast.walk(func)
        )

    @staticmethod
    def _is_connection_wait(node: ast.Call) -> bool:
        func = node.func
        if isinstance(func, ast.Name):
            return func.id == "wait"
        return (
            isinstance(func, ast.Attribute)
            and func.attr == "wait"
            and isinstance(func.value, ast.Name)
            and func.value.id in _CONNECTION_MODULES
        )

    @staticmethod
    def _mentions_sentinel(node: ast.Call) -> bool:
        return any(
            (isinstance(sub, ast.Attribute) and "sentinel" in sub.attr)
            or (isinstance(sub, ast.Name) and "sentinel" in sub.id)
            for arg in node.args
            for sub in ast.walk(arg)
        )


#: ``time.<attr>`` calls that read the wall clock.  ``perf_counter`` is
#: deliberately absent: measuring how long something *took* is fine —
#: what simulation logic must never do is branch on what time it *is*.
_WALL_CLOCK_TIME_ATTRS = frozenset(
    {"time", "time_ns", "monotonic", "monotonic_ns"}
)

#: ``datetime``-style constructors that capture the current moment.
_WALL_CLOCK_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})


@register
class WallClockBanRule(Rule):
    """Simulation time comes from the virtual clock, never the host."""

    name = "wall-clock-ban"
    description = (
        "time.time()/time.monotonic() (and their _ns variants) and "
        "datetime.now()/utcnow()/today() are banned — flow lifecycle, "
        "expiry and replay must run on the deterministic VirtualClock, "
        "or two runs of the same workload diverge"
    )
    hint = (
        "thread the tick through as a parameter (runners advance a "
        "repro.runtime.lifecycle.VirtualClock via ('advance', dt) "
        "events); time.perf_counter() remains available for measuring "
        "durations, and genuine supervision deadlines (watching for "
        "dead worker processes) may keep time.monotonic() under an "
        "inline `# repro-lint: disable=wall-clock-ban` pragma"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or not isinstance(
                node.func, ast.Attribute
            ):
                continue
            attr = node.func.attr
            receiver = node.func.value
            if (
                attr in _WALL_CLOCK_TIME_ATTRS
                and isinstance(receiver, ast.Name)
                and receiver.id == "time"
            ):
                yield ctx.finding(
                    self,
                    node,
                    f"time.{attr}() reads the wall clock — simulation "
                    f"logic must take its time from the VirtualClock",
                )
            elif attr in _WALL_CLOCK_DATETIME_ATTRS and self._is_datetime(
                receiver
            ):
                yield ctx.finding(
                    self,
                    node,
                    f"datetime {attr}() captures the current moment — "
                    f"deterministic code cannot depend on when it runs",
                )

    @staticmethod
    def _is_datetime(receiver: ast.expr) -> bool:
        """``datetime.now()``, ``datetime.datetime.now()`` and
        ``date.today()`` shapes; other objects' ``.now()`` are out of
        scope."""
        if isinstance(receiver, ast.Name):
            return receiver.id in ("datetime", "date")
        return isinstance(receiver, ast.Attribute) and receiver.attr in (
            "datetime",
            "date",
        )


#: List methods that turn a plain list into a FIFO: popping or
#: inserting at the head.  Stack use (``append``/``pop()``) is fine —
#: stacks drain before they grow in this codebase's recursion helpers.
_LIST_QUEUE_OPS = frozenset({"pop", "insert"})


@register
class BoundedQueueRule(Rule):
    """Every queue in the runtime declares its capacity."""

    name = "bounded-queue"
    description = (
        "deque(...) must carry maxlen= or sit behind a len() capacity "
        "check in scope, and lists must not be used as FIFOs "
        "(.pop(0)/.insert(0, ...)) without one — an unbounded queue "
        "turns overload into unbounded memory growth and unbounded "
        "latency instead of deterministic shedding"
    )
    hint = (
        "pass maxlen= at construction, or guard every append with a "
        "len(<queue>) comparison against the capacity (class-wide for "
        "self attributes, within the function for locals); see "
        "repro.runtime.streaming.AdmissionQueue for the idiom"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        targets = self._assignment_targets(ctx.tree)
        for node, funcs, classes in _walk_scoped(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if _callee_name(node) == "deque":
                if self._has_maxlen(node):
                    continue
                target = targets.get(id(node))
                if target is not None and self._len_bounded(
                    target, funcs, classes
                ):
                    continue
                yield ctx.finding(
                    self,
                    node,
                    "deque() without maxlen= and with no len() capacity "
                    "check in scope — queues must declare their bound",
                )
            elif isinstance(node.func, ast.Attribute) and (
                self._is_head_op(node)
            ):
                if self._len_bounded(node.func.value, funcs, classes):
                    continue
                yield ctx.finding(
                    self,
                    node,
                    f"list used as a FIFO via .{node.func.attr}(0, ...) "
                    f"with no len() capacity check in scope — use a "
                    f"bounded deque or guard the producer side",
                )

    @staticmethod
    def _has_maxlen(call: ast.Call) -> bool:
        if any(keyword.arg == "maxlen" for keyword in call.keywords):
            return True
        return len(call.args) >= 2  # deque(iterable, maxlen)

    @staticmethod
    def _is_head_op(call: ast.Call) -> bool:
        func = call.func
        assert isinstance(func, ast.Attribute)
        if func.attr not in _LIST_QUEUE_OPS or not call.args:
            return False
        head = call.args[0]
        return isinstance(head, ast.Constant) and head.value == 0

    @staticmethod
    def _assignment_targets(tree: ast.Module) -> dict[int, ast.expr]:
        """Map each call node id inside an assignment's value to the
        (single) assignment target, so ``self._q = deque()`` and
        ``self._pending = [deque() for ...]`` both resolve to the
        attribute whose bound we then look for."""
        targets: dict[int, ast.expr] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                target, value = node.target, node.value
            else:
                continue
            for sub in ast.walk(value):
                if isinstance(sub, ast.Call):
                    targets[id(sub)] = target
        return targets

    @staticmethod
    def _target_key(target: ast.expr) -> tuple[str, str] | None:
        """A scope-searchable identity: ``("attr", name)`` for
        ``self.<name>`` (and any subscript of it), ``("name", id)``
        for locals."""
        while isinstance(target, ast.Subscript):
            target = target.value
        if isinstance(target, ast.Attribute):
            return ("attr", target.attr)
        if isinstance(target, ast.Name):
            return ("name", target.id)
        return None

    @classmethod
    def _len_bounded(
        cls,
        target: ast.expr,
        funcs: tuple[ast.AST, ...],
        classes: tuple[ast.ClassDef, ...],
    ) -> bool:
        """True when a ``len(<target>)`` comparison exists in the
        target's scope: the enclosing class for attributes (the bound
        may guard appends in a different method than the constructor),
        the enclosing function for locals."""
        key = cls._target_key(target)
        if key is None:
            return False
        scope: ast.AST | None
        if key[0] == "attr":
            scope = classes[-1] if classes else None
        else:
            scope = funcs[-1] if funcs else None
        if scope is None:
            return False
        return any(
            cls._bounds(node, key)
            for node in ast.walk(scope)
            if isinstance(node, ast.Compare)
        )

    @classmethod
    def _bounds(cls, compare: ast.Compare, key: tuple[str, str]) -> bool:
        for side in [compare.left, *compare.comparators]:
            if (
                isinstance(side, ast.Call)
                and _callee_name(side) == "len"
                and len(side.args) == 1
                and cls._target_key(side.args[0]) == key
            ):
                return True
        return False
