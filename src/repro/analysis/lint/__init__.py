"""``repro-lint``: project-specific AST invariant checks.

See :mod:`repro.analysis.lint.core` for the framework and
:mod:`repro.analysis.lint.rules` for the rule set.  Importing this
package registers every rule.
"""

from repro.analysis.lint.core import (
    DEFAULT_CONFIG_NAME,
    PRAGMA,
    REGISTRY,
    Config,
    Finding,
    ModuleContext,
    Rule,
    check_source,
    iter_python_files,
    main,
    register,
    rule_names,
    run_paths,
)
from repro.analysis.lint import rules  # noqa: F401  (registers the rule set)

__all__ = [
    "DEFAULT_CONFIG_NAME",
    "PRAGMA",
    "REGISTRY",
    "Config",
    "Finding",
    "ModuleContext",
    "Rule",
    "check_source",
    "iter_python_files",
    "main",
    "register",
    "rule_names",
    "run_paths",
]
