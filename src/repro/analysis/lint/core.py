"""The ``repro-lint`` framework: AST rules over project invariants.

The runtime's correctness rests on invariants that ordinary linters
cannot see — shared-memory segments must register unlink guards,
``frame_len`` must never flow into a cache key, the columnar hot tiers
must stay dict-free, shard submission snapshots the mutation log exactly
once.  Each invariant is a :class:`Rule`: a small AST check with a
``file:line`` finding and a fix hint, registered in :data:`REGISTRY` and
driven by :func:`run_paths` (the ``python -m repro.analysis`` entry
point and the CI ``repro-lint`` job).

Suppression is explicit and reviewable, never silent:

- inline, on the offending line::

      shm = SharedMemory(create=True, size=n)  # repro-lint: disable=shm-lifecycle

- per-file, from ``repro-lint.toml`` at the repo root::

      [rule.hot-path-purity]
      exclude = ["examples/*.py"]

Rules are pure functions of one module's AST; the framework owns file
walking, pragma parsing, config and reporting, so adding a rule is one
subclass plus a pair of fixtures (``tests/analysis/lint_fixtures/``; a
meta-test fails any rule registered without them).
"""

from __future__ import annotations

import ast
import fnmatch
import sys
import tomllib
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path

#: Inline pragma prefix. ``# repro-lint: disable=rule-a,rule-b`` on the
#: finding's line suppresses those rules; ``disable`` alone suppresses
#: every rule on the line.
PRAGMA = "repro-lint:"

DEFAULT_CONFIG_NAME = "repro-lint.toml"


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    hint: str

    def render(self) -> str:
        text = f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


@dataclass
class ModuleContext:
    """Everything one rule needs to check one parsed module."""

    path: str
    tree: ast.Module
    source: str
    lines: Sequence[str] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = tuple(self.source.splitlines())

    def finding(self, rule: Rule, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=rule.name,
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            hint=rule.hint,
        )

    def functions(self) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node


class Rule:
    """Base class for one invariant check.

    Subclasses set :attr:`name` (kebab-case, the suppression key),
    :attr:`description` (one line, shown by ``--list-rules``) and
    :attr:`hint` (how to fix, appended to every finding), and implement
    :meth:`check` yielding findings over one module.
    """

    name: str = ""
    description: str = ""
    hint: str = ""

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError


#: The registered rule set, in registration order.
REGISTRY: list[Rule] = []


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule (instance) to :data:`REGISTRY`."""
    rule = rule_cls()
    if not rule.name:
        raise ValueError(f"{rule_cls.__name__} has no name")
    if any(existing.name == rule.name for existing in REGISTRY):
        raise ValueError(f"duplicate rule name {rule.name!r}")
    REGISTRY.append(rule)
    return rule_cls


def rule_names() -> tuple[str, ...]:
    return tuple(rule.name for rule in REGISTRY)


@dataclass(frozen=True)
class Config:
    """Per-rule path allowlists (fnmatch globs over posix-style paths)."""

    excludes: dict[str, tuple[str, ...]] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> Config:
        with open(path, "rb") as handle:
            data = tomllib.load(handle)
        excludes: dict[str, tuple[str, ...]] = {}
        for name, section in data.get("rule", {}).items():
            patterns = tuple(section.get("exclude", ()))
            if patterns:
                excludes[name] = patterns
        return cls(excludes=excludes)

    @classmethod
    def discover(cls, start: Path) -> Config:
        """The nearest ``repro-lint.toml`` at or above ``start``."""
        for directory in [start, *start.parents]:
            candidate = directory / DEFAULT_CONFIG_NAME
            if candidate.is_file():
                return cls.load(candidate)
        return cls()

    def excluded(self, rule_name: str, path: str) -> bool:
        posix = Path(path).as_posix()
        return any(
            fnmatch.fnmatch(posix, pattern)
            or fnmatch.fnmatch(Path(posix).name, pattern)
            or posix.endswith("/" + pattern.lstrip("./"))
            for pattern in self.excludes.get(rule_name, ())
        )


def _suppressed(ctx: ModuleContext, finding: Finding) -> bool:
    """True when the finding's line carries a disable pragma for it."""
    if not 1 <= finding.line <= len(ctx.lines):
        return False
    line = ctx.lines[finding.line - 1]
    marker = line.find(PRAGMA)
    if marker < 0 or "#" not in line[:marker]:
        return False
    directive = line[marker + len(PRAGMA) :].strip()
    if not directive.startswith("disable"):
        return False
    _, _, names = directive.partition("=")
    if not names.strip():
        return True  # bare "disable" silences every rule on the line
    return finding.rule in {name.strip() for name in names.split(",")}


def check_source(
    source: str,
    path: str,
    rules: Sequence[Rule] | None = None,
    config: Config | None = None,
) -> list[Finding]:
    """Run the rule set over one module's source text."""
    tree = ast.parse(source, filename=path)
    ctx = ModuleContext(path=path, tree=tree, source=source)
    config = config if config is not None else Config()
    findings: list[Finding] = []
    for rule in rules if rules is not None else REGISTRY:
        if config.excluded(rule.name, path):
            continue
        for finding in rule.check(ctx):
            if not _suppressed(ctx, finding):
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def iter_python_files(paths: Iterable[str]) -> Iterator[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def run_paths(
    paths: Sequence[str],
    rules: Sequence[Rule] | None = None,
    config: Config | None = None,
) -> list[Finding]:
    """Run the rule set over every ``.py`` file under the given paths."""
    if config is None:
        config = Config.discover(Path.cwd())
    findings: list[Finding] = []
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        try:
            findings.extend(
                check_source(
                    source, str(file_path), rules=rules, config=config
                )
            )
        except SyntaxError as exc:
            findings.append(
                Finding(
                    rule="parse-error",
                    path=str(file_path),
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) + 1,
                    message=f"cannot parse: {exc.msg}",
                    hint="repro-lint only checks files the compiler accepts",
                )
            )
    return findings


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point (``python -m repro.analysis``)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Project-specific AST invariant checks (shm lifecycle, "
            "frame_len exclusion, hot-path purity, snapshot discipline, "
            "dtype discipline)."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories"
    )
    parser.add_argument(
        "--config",
        type=Path,
        default=None,
        help=f"path to {DEFAULT_CONFIG_NAME} (default: discovered upwards)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule names to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule set and exit"
    )
    args = parser.parse_args(argv)

    # Import for side effect: the rule set registers itself.
    from repro.analysis.lint import rules as _rules  # noqa: F401

    if args.list_rules:
        for rule in REGISTRY:
            print(f"{rule.name}: {rule.description}")
        return 0

    selected: Sequence[Rule] | None = None
    if args.select:
        wanted = {name.strip() for name in args.select.split(",")}
        unknown = wanted - set(rule_names())
        if unknown:
            print(
                f"unknown rule(s): {', '.join(sorted(unknown))}",
                file=sys.stderr,
            )
            return 2
        selected = [rule for rule in REGISTRY if rule.name in wanted]

    config = Config.load(args.config) if args.config else None
    findings = run_paths(args.paths, rules=selected, config=config)
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"repro-lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0
