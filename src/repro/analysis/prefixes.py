"""Prefix-length distribution analysis.

The cost of controlled prefix expansion — and therefore the per-level
trie sizes in Figs. 2-4 — is governed by where prefix lengths fall
relative to the stride boundaries: a length just past a boundary expands
into nearly a full stride's worth of records.  This module summarises a
rule set's per-partition length distribution and the implied expansion
cost, used by the ablation discussion and available to library users for
capacity estimation without building tries.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.analysis.unique_values import partition_unique_entries
from repro.filters.rule import RuleSet
from repro.openflow.fields import REGISTRY


@dataclass(frozen=True)
class PartitionLengthProfile:
    """Unique-entry length histogram of one partition."""

    partition: str
    length_counts: dict[int, int]  # prefix length -> unique entries

    @property
    def total_entries(self) -> int:
        return sum(self.length_counts.values())

    def expansion_records(self, strides: tuple[int, ...]) -> int:
        """Expanded records these entries occupy at their levels.

        For each unique entry of length L, controlled prefix expansion
        writes ``2^(boundary - L)`` records where *boundary* is the first
        cumulative stride >= L.  Path records at upper levels are shared
        and therefore not attributable per entry; this is the expansion
        floor, exact for the level the entry lands on.
        """
        boundaries = [sum(strides[: i + 1]) for i in range(len(strides))]
        total = 0
        for length, count in self.length_counts.items():
            if length == 0:
                continue
            boundary = next(b for b in boundaries if length <= b)
            total += count * (1 << (boundary - length))
        return total

    def mean_length(self) -> float:
        if not self.total_entries:
            return 0.0
        return (
            sum(length * count for length, count in self.length_counts.items())
            / self.total_entries
        )


def prefix_length_profile(
    rule_set: RuleSet, field_name: str, part_bits: int = 16
) -> dict[str, PartitionLengthProfile]:
    """Per-partition length histograms for one LPM field of a rule set."""
    if REGISTRY[field_name].method.value != "LPM":
        raise ValueError(f"{field_name} is not a prefix-match field")
    profiles: dict[str, PartitionLengthProfile] = {}
    for partition, entries in partition_unique_entries(
        rule_set, field_name, part_bits
    ).items():
        counts: Counter[int] = Counter(length for _, length in entries)
        profiles[partition] = PartitionLengthProfile(
            partition=partition, length_counts=dict(counts)
        )
    return profiles


def expansion_summary(
    rule_set: RuleSet,
    field_name: str,
    strides: tuple[int, ...],
    part_bits: int = 16,
) -> dict[str, tuple[int, int]]:
    """Per-partition ``(unique entries, expanded records)`` summary.

    The ratio of the two is the average expansion factor the stride
    distribution imposes on this rule set's value population.
    """
    return {
        partition: (profile.total_entries, profile.expansion_records(strides))
        for partition, profile in prefix_length_profile(
            rule_set, field_name, part_bits
        ).items()
    }
