"""Render the Section III survey as the paper's Tables III and IV."""

from __future__ import annotations

from collections.abc import Mapping

from repro.analysis.unique_values import exact_values, partition_unique_entries
from repro.filters.rule import Application, RuleSet
from repro.util.tables import TextTable


def mac_survey_table(rule_sets: Mapping[str, RuleSet]) -> TextTable:
    """Build Table III (unique field values of flow-based MAC filter).

    Columns follow the paper exactly: rules, unique VLAN IDs, unique
    values of the higher/middle/lower 16-bit Ethernet partitions.
    """
    table = TextTable(
        headers=[
            "Flow Filter",
            "Number of Rules",
            "VLAN ID",
            "Higher 16-bit Ethernet",
            "Middle 16-bit Ethernet",
            "Lower 16-bit Ethernet",
        ],
        title="Table III — unique field values, MAC learning filters",
    )
    for name, rule_set in rule_sets.items():
        if rule_set.application is not Application.MAC_LEARNING:
            raise ValueError(f"{name} is not a MAC-learning rule set")
        eth = partition_unique_entries(rule_set, "eth_dst")
        table.add_row(
            [
                name,
                len(rule_set),
                len(exact_values(rule_set, "vlan_vid")),
                len(eth["eth_dst/hi"]),
                len(eth["eth_dst/mid"]),
                len(eth["eth_dst/lo"]),
            ]
        )
    return table


def routing_survey_table(rule_sets: Mapping[str, RuleSet]) -> TextTable:
    """Build Table IV (unique field values of flow-based Routing filter)."""
    table = TextTable(
        headers=[
            "Flow Filter",
            "Number of Rules",
            "Ingress Port",
            "Higher 16-bit IP Address",
            "Lower 16-bit IP Address",
        ],
        title="Table IV — unique field values, Routing filters",
    )
    for name, rule_set in rule_sets.items():
        if rule_set.application is not Application.ROUTING:
            raise ValueError(f"{name} is not a Routing rule set")
        ip = partition_unique_entries(rule_set, "ipv4_dst")
        table.add_row(
            [
                name,
                len(rule_set),
                len(exact_values(rule_set, "in_port")),
                len(ip["ipv4_dst/hi"]),
                len(ip["ipv4_dst/lo"]),
            ]
        )
    return table
