"""Filter analysis (paper Section III).

The analysis pipeline recovers the paper's Tables III and IV from rule
sets: for every field it counts the *unique values* stored by the lookup
structure responsible for that field — whole values for exact-match (EM)
fields, distinct ``(value, prefix length)`` entries per 16-bit partition
for prefix (LPM) fields.  The repetition statistics derived from the same
counts quantify what the label method saves (Section IV.B).
"""

from repro.analysis.unique_values import (
    FieldUniqueValues,
    exact_values,
    partition_unique_entries,
    unique_value_survey,
)
from repro.analysis.prefixes import (
    PartitionLengthProfile,
    expansion_summary,
    prefix_length_profile,
)
from repro.analysis.replication import (
    FieldRepetition,
    repetition_survey,
    total_repetition,
)
from repro.analysis.survey import mac_survey_table, routing_survey_table

__all__ = [
    "FieldRepetition",
    "PartitionLengthProfile",
    "expansion_summary",
    "prefix_length_profile",
    "FieldUniqueValues",
    "exact_values",
    "mac_survey_table",
    "partition_unique_entries",
    "repetition_survey",
    "routing_survey_table",
    "total_repetition",
    "unique_value_survey",
]
