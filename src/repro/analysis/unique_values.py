"""Unique-field-value analysis (the survey behind Tables III and IV).

For each rule-set field the analysis asks: *how many distinct entries must
the lookup structure for this field store?*

- **EM fields** (VLAN ID, ingress port, ...) are served by a hash LUT, so
  the answer is the number of distinct exact values.
- **LPM fields** (Ethernet/IP addresses) are split into 16-bit partitions,
  each served by a multi-bit trie; the answer per partition is the number
  of distinct ``(value, prefix length)`` entries, because that is what the
  label method stores once each.

Wildcarded components contribute nothing — they are represented by the
implicit "no match" label, not by a stored entry.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.filters.partitions import (
    FieldPartition,
    partition_entries,
    partition_scheme,
)
from repro.filters.rule import RuleSet
from repro.openflow.fields import REGISTRY, MatchMethod
from repro.openflow.match import ExactMatch, PrefixMatch, WildcardMatch


@dataclass(frozen=True)
class FieldUniqueValues:
    """Unique-entry counts for one field of a rule set.

    ``per_partition`` maps partition name (e.g. ``eth_dst/mid``) to the
    number of distinct stored entries; EM fields have a single pseudo
    partition named after the field itself.
    """

    field_name: str
    method: MatchMethod
    per_partition: dict[str, int]

    @property
    def total(self) -> int:
        return sum(self.per_partition.values())


def exact_values(rule_set: RuleSet, field_name: str) -> set[int]:
    """Distinct exact values a rule set uses for an EM field."""
    values: set[int] = set()
    for rule in rule_set:
        predicate = rule.fields.get(field_name)
        if predicate is None or isinstance(predicate, WildcardMatch):
            continue
        if isinstance(predicate, ExactMatch):
            values.add(predicate.value)
        elif isinstance(predicate, PrefixMatch) and predicate.length == predicate.bits:
            values.add(predicate.value)
        else:
            raise TypeError(
                f"field {field_name!r} is exact-match but rule carries "
                f"{type(predicate).__name__}"
            )
    return values


def partition_unique_entries(
    rule_set: RuleSet,
    field_name: str,
    part_bits: int = 16,
) -> dict[str, set[tuple[int, int]]]:
    """Distinct stored entries per 16-bit partition of an LPM field.

    Returns a mapping from partition name to the set of distinct
    ``(value, prefix length)`` entries that partition's trie stores.
    """
    bits = REGISTRY[field_name].bits
    scheme: tuple[FieldPartition, ...] = partition_scheme(field_name, bits, part_bits)
    unique: dict[str, set[tuple[int, int]]] = {p.name: set() for p in scheme}
    for rule in rule_set:
        predicate = rule.fields.get(field_name)
        if predicate is None or isinstance(predicate, WildcardMatch):
            continue
        for part, entry in zip(scheme, partition_entries(predicate, scheme)):
            if entry is not None:
                unique[part.name].add(entry)
    return unique


def unique_value_survey(
    rule_set: RuleSet, part_bits: int = 16
) -> list[FieldUniqueValues]:
    """Run the full Section III survey over every field of a rule set."""
    results: list[FieldUniqueValues] = []
    for field_name in rule_set.field_names:
        method = REGISTRY[field_name].method
        if method is MatchMethod.PREFIX:
            per_partition = {
                name: len(entries)
                for name, entries in partition_unique_entries(
                    rule_set, field_name, part_bits
                ).items()
            }
        elif method is MatchMethod.EXACT:
            per_partition = {field_name: len(exact_values(rule_set, field_name))}
        else:
            # Range fields are served by a range engine; its stored-entry
            # count is the number of distinct ranges.
            ranges = {
                (p.low, p.high)  # type: ignore[union-attr]
                for p in rule_set.field_predicates(field_name)
                if not isinstance(p, WildcardMatch)
                and not getattr(p, "is_full", False)
            }
            per_partition = {field_name: len(ranges)}
        results.append(
            FieldUniqueValues(
                field_name=field_name, method=method, per_partition=per_partition
            )
        )
    return results
