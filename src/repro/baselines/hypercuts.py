"""A HiCuts/HyperCuts-style decision tree (the trie-geometric baseline).

Paper Section III.B: "Rule replication is an issue for multi-dimensional
lookup algorithms ... For example, HyperCuts requires that the same rule
be stored in several trie nodes, which leads to inefficient memory use."

This implementation builds a geometric cutting tree over the rules'
per-field ranges and *measures* that replication: the ratio of leaf rule
references to distinct rules.  It is deliberately a faithful baseline,
not an optimised classifier — its purpose is the comparison in Table I
and the label-method ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping

from repro.filters.rule import Rule, RuleSet
from repro.openflow.fields import REGISTRY
from repro.openflow.match import (
    ExactMatch,
    FieldMatch,
    PrefixMatch,
    RangeMatch,
    WildcardMatch,
)
from repro.util.bits import mask_of, prefix_range


def _predicate_range(predicate: FieldMatch, bits: int) -> tuple[int, int]:
    if isinstance(predicate, WildcardMatch):
        return (0, mask_of(bits))
    if isinstance(predicate, ExactMatch):
        return (predicate.value, predicate.value)
    if isinstance(predicate, PrefixMatch):
        return prefix_range(predicate.value, predicate.length, predicate.bits)
    if isinstance(predicate, RangeMatch):
        return (predicate.low, predicate.high)
    raise TypeError(f"unsupported predicate {type(predicate).__name__}")


@dataclass
class _Node:
    region: tuple[tuple[int, int], ...]
    rules: list[int]  # indices into the rule list
    children: list["_Node"] | None = None
    cut_dim: int = -1
    cut_shift: int = 0  # children = 2^cuts slices along cut_dim


@dataclass(frozen=True)
class HyperCutsStats:
    """Replication and size statistics of a built tree."""

    rules: int
    nodes: int
    leaves: int
    leaf_rule_refs: int
    max_depth: int

    @property
    def replication_factor(self) -> float:
        """Average stored copies per rule (1.0 = no replication)."""
        return self.leaf_rule_refs / self.rules if self.rules else 0.0


class HyperCutsTree:
    """Geometric cutting tree with measurable rule replication."""

    def __init__(
        self,
        rule_set: RuleSet,
        binth: int = 8,
        max_depth: int = 24,
        cuts_per_node: int = 2,
    ):
        """Build the tree.

        Args:
            rule_set: rules to index.
            binth: leaf threshold — nodes with at most this many rules
                stop cutting (HiCuts' ``binth`` parameter).
            max_depth: hard recursion cap.
            cuts_per_node: log2 of the child count per cut (2 -> 4-way).
        """
        if binth < 1:
            raise ValueError("binth must be >= 1")
        self.rule_set = rule_set
        self.binth = binth
        self.max_depth = max_depth
        self.cuts_per_node = cuts_per_node
        self.field_names = tuple(rule_set.field_names)
        self._bits = tuple(REGISTRY[name].bits for name in self.field_names)
        self._rules: list[Rule] = list(rule_set)
        self._ranges = [
            tuple(
                _predicate_range(rule.predicate(name, bits), bits)
                for name, bits in zip(self.field_names, self._bits)
            )
            for rule in self._rules
        ]
        root_region = tuple((0, mask_of(bits)) for bits in self._bits)
        self._root = _Node(region=root_region, rules=list(range(len(self._rules))))
        self._build(self._root, depth=0)

    def _build(self, node: _Node, depth: int) -> None:
        if len(node.rules) <= self.binth or depth >= self.max_depth:
            return
        dim = self._pick_dimension(node)
        if dim is None:
            return
        low, high = node.region[dim]
        span = high - low + 1
        cuts = min(self.cuts_per_node, max(1, span.bit_length() - 1))
        child_count = 1 << cuts
        slice_size = span // child_count
        if slice_size == 0:
            return
        children: list[_Node] = []
        for i in range(child_count):
            child_low = low + i * slice_size
            child_high = high if i == child_count - 1 else child_low + slice_size - 1
            region = tuple(
                (child_low, child_high) if d == dim else node.region[d]
                for d in range(len(node.region))
            )
            rules = [
                index
                for index in node.rules
                if self._ranges[index][dim][0] <= child_high
                and self._ranges[index][dim][1] >= child_low
            ]
            children.append(_Node(region=region, rules=rules))
        # Reject useless cuts (every child inherited every rule).
        if all(len(c.rules) == len(node.rules) for c in children):
            return
        node.children = children
        node.cut_dim = dim
        node.rules = []
        for child in children:
            self._build(child, depth + 1)

    def _pick_dimension(self, node: _Node) -> int | None:
        """HyperCuts heuristic: cut the dimension with the most distinct
        rule projections inside the node's region."""
        best_dim, best_score = None, 1
        for dim in range(len(node.region)):
            low, high = node.region[dim]
            if low == high:
                continue
            projections = {
                (max(self._ranges[i][dim][0], low), min(self._ranges[i][dim][1], high))
                for i in node.rules
            }
            if len(projections) > best_score:
                best_dim, best_score = dim, len(projections)
        return best_dim

    def lookup(self, packet_fields: Mapping[str, int]) -> Rule | None:
        """Best-priority rule whose region contains the packet point."""
        point = []
        for name in self.field_names:
            value = packet_fields.get(name)
            if value is None:
                return None
            point.append(value)
        node = self._root
        while node.children is not None:
            low, high = node.region[node.cut_dim]
            span = high - low + 1
            child_count = len(node.children)
            slice_size = span // child_count
            offset = min(
                (point[node.cut_dim] - low) // slice_size, child_count - 1
            )
            node = node.children[offset]
        best: Rule | None = None
        for index in node.rules:
            rule = self._rules[index]
            if rule.matches(packet_fields) and (
                best is None or rule.priority > best.priority
            ):
                best = rule
        return best

    def stats(self) -> HyperCutsStats:
        nodes = leaves = refs = 0
        max_depth = 0
        stack: list[tuple[_Node, int]] = [(self._root, 0)]
        while stack:
            node, depth = stack.pop()
            nodes += 1
            max_depth = max(max_depth, depth)
            if node.children is None:
                leaves += 1
                refs += len(node.rules)
            else:
                stack.extend((child, depth + 1) for child in node.children)
        return HyperCutsStats(
            rules=len(self._rules),
            nodes=nodes,
            leaves=leaves,
            leaf_rule_refs=refs,
            max_depth=max_depth,
        )
