"""Baselines the paper positions itself against.

- :mod:`repro.baselines.single_table` — the OpenFlow v1.0 single-table
  model, whose flow-entry explosion motivated multiple tables;
- :mod:`repro.baselines.hypercuts` — a HiCuts/HyperCuts-style decision
  tree that concretely exhibits the *rule replication* the label method
  avoids (paper Section III.B).

The TCAM and Tuple Space Search baselines live with the other search
algorithms in :mod:`repro.algorithms`.
"""

from repro.baselines.hypercuts import HyperCutsTree, HyperCutsStats
from repro.baselines.single_table import (
    SingleTableSwitch,
    cross_product_entries,
)

__all__ = [
    "HyperCutsStats",
    "HyperCutsTree",
    "SingleTableSwitch",
    "cross_product_entries",
]
