"""The OpenFlow v1.0 single-table baseline.

"The first version of the OpenFlow protocol specified a single table
lookup model with the associated constraints in flow entry numbers and
search capabilities." — paper Section I.

Two artefacts matter for the reproduction:

1. a behavioural single-table switch (one linear-scanned flow table over
   the union of all fields), used as the semantic oracle in differential
   tests; and
2. the *flow-entry explosion* argument: expressing several independent
   applications in one table requires the cross-product of their rule
   sets, which :func:`cross_product_entries` quantifies.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.filters.rule import Rule, RuleSet
from repro.openflow.actions import OutputAction
from repro.openflow.flow import FlowEntry
from repro.openflow.instructions import WriteActions
from repro.openflow.match import Match
from repro.openflow.table import FlowTable


class SingleTableSwitch:
    """A one-table switch holding every application's rules together."""

    def __init__(self, rule_sets: Sequence[RuleSet]):
        self.table = FlowTable(table_id=0)
        self._sources = list(rule_sets)
        for offset, rule_set in enumerate(rule_sets):
            # Stack applications by priority band so earlier sets win, the
            # closest single-table approximation of pipeline precedence.
            band = (len(rule_sets) - offset) << 20
            for rule in rule_set:
                self.table.add(
                    FlowEntry.build(
                        match=rule.to_match(),
                        priority=band + rule.priority,
                        instructions=[WriteActions([OutputAction(rule.action_port)])],
                    )
                )

    def lookup(self, packet_fields: Mapping[str, int]) -> FlowEntry | None:
        return self.table.lookup(packet_fields)

    def __len__(self) -> int:
        return len(self.table)


def cross_product_entries(rule_sets: Sequence[RuleSet]) -> int:
    """Entries a single table needs to emulate *conjunctive* applications.

    When a packet must satisfy one rule from **each** application (the
    multi-table pipeline's semantics), a single table needs one entry per
    member of the cross product of the rule sets — the combinatorial
    blow-up that motivated OpenFlow v1.1 multiple tables.

    >>> cross_product_entries([])
    0
    """
    if not rule_sets:
        return 0
    total = 1
    for rule_set in rule_sets:
        total *= max(len(rule_set), 1)
    return total


def materialise_cross_product(
    first: RuleSet, second: RuleSet, limit: int = 100_000
) -> list[Rule]:
    """Actually build (a bounded portion of) the cross-product rules.

    Used by tests and the single-table example to demonstrate the
    explosion concretely; refuses to materialise more than ``limit``
    composite rules.
    """
    size = len(first) * len(second)
    if size > limit:
        raise ValueError(
            f"cross product of {len(first)} x {len(second)} rules "
            f"({size}) exceeds limit {limit}"
        )
    shared = set(first.field_names) & set(second.field_names)
    if shared:
        raise ValueError(
            f"applications share fields {sorted(shared)}; their conjunction "
            "is not a plain cross product"
        )
    combined: list[Rule] = []
    for a in first:
        for b in second:
            fields = dict(a.fields)
            fields.update(b.fields)
            combined.append(
                Rule(
                    fields=fields,
                    priority=(a.priority << 10) + b.priority,
                    action_port=b.action_port,
                )
            )
    return combined


def single_table_matches(
    switch: SingleTableSwitch, packet_fields: Mapping[str, int]
) -> Match | None:
    """Convenience for tests: the matched entry's match, if any."""
    entry = switch.lookup(packet_fields)
    return entry.match if entry is not None else None
