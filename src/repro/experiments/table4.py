"""Table IV — number of unique field values of the flow-based Routing filter.

Also verifies the paper's highlighted anomaly: exactly coza, cozb, soza
and sozb have more unique higher-partition than lower-partition values.
"""

from __future__ import annotations

from repro.analysis.survey import routing_survey_table
from repro.experiments.common import all_filter_names, routing_rule_set
from repro.experiments.registry import ExperimentResult, experiment
from repro.filters.paper_data import (
    OUTLIER_ROUTING_FILTERS,
    TABLE4_ROUTING_STATS,
)


@experiment("table4")
def run() -> ExperimentResult:
    rule_sets = {name: routing_rule_set(name) for name in all_filter_names()}
    table = routing_survey_table(rule_sets)

    mismatches = 0
    outliers: list[str] = []
    for row in table.rows:
        name = str(row[0])
        expected = TABLE4_ROUTING_STATS[name]
        got = tuple(int(c) for c in row[1:])
        want = (
            expected.rules,
            expected.unique_port,
            expected.unique_ip_high,
            expected.unique_ip_low,
        )
        if got != want:
            mismatches += 1
        if got[2] > got[3]:
            outliers.append(name)

    result = ExperimentResult(experiment_id="table4", tables=[table])
    result.headline["cell_mismatches_vs_paper"] = float(mismatches)
    result.headline["outliers_match_paper"] = float(
        tuple(outliers) == OUTLIER_ROUTING_FILTERS
    )
    result.headline["max_unique_ip_high"] = float(
        max(s.unique_ip_high for s in TABLE4_ROUTING_STATS.values())
    )
    result.notes.append(
        f"higher>lower outliers: {outliers} (paper: "
        f"{list(OUTLIER_ROUTING_FILTERS)})"
    )
    return result
