"""Table I — evaluation of multi-dimensional lookup algorithm categories.

The paper's Table I is qualitative; this experiment reproduces it and
backs each row with a *measured* quantity on the same rule set (the bbra
MAC filter, small enough for every baseline):

- Hardware (TCAM): very fast lookup (1 probe) but the largest bit count;
- Hashing (TSS): few probes, hash-slot memory, range-expansion risk;
- Decomposition (this paper): small memory via the label method, more
  combination work at the index stage;
- Trie-geometric (HyperCuts): moderate lookup, rule replication > 1.
"""

from __future__ import annotations

from repro.algorithms.tcam import Tcam
from repro.algorithms.tss import TupleSpaceSearch
from repro.baselines.hypercuts import HyperCutsTree
from repro.core.builder import build_lookup_table
from repro.experiments.common import mac_rule_set
from repro.experiments.registry import ExperimentResult, experiment
from repro.filters.synthetic import SyntheticAclConfig, generate_acl_set
from repro.memory.report import table_memory_report
from repro.util.tables import TextTable
from repro.util.units import kbits

#: The paper's qualitative rows, reproduced verbatim.
QUALITATIVE_ROWS = (
    ("Trie-Geometric", "Efficient Memory, Moderate lookup", "Very Complex update"),
    ("Decomposition", "Fast Lookup", "Memory explosion, Complex update"),
    ("Hashing-based", "Fast Lookup", "Collision issue, Memory explosion"),
    ("Hardware-based", "Very Fast Lookup", "Memory Limitation, Poor Flexibility"),
)

#: Match-stage comparisons use the largest MAC filter; the rule-replication
#: demonstration needs wildcard-heavy rules, so HyperCuts gets an ACL set.
BENCH_FILTER = "gozb"
ACL_RULES = 600


@experiment("table1")
def run() -> ExperimentResult:
    qualitative = TextTable(
        headers=["Category", "Advantages", "Disadvantages"],
        title="Table I — evaluation of multi-dimensional lookup algorithms",
    )
    for row in QUALITATIVE_ROWS:
        qualitative.add_row(list(row))

    rule_set = mac_rule_set(BENCH_FILTER)
    acl_set = generate_acl_set(SyntheticAclConfig(rules=ACL_RULES, seed=0x7AB1))

    tcam = Tcam.from_rule_set(rule_set)
    tss = TupleSpaceSearch.from_rule_set(rule_set)
    hypercuts = HyperCutsTree(acl_set, binth=8)
    decomposition = build_lookup_table(rule_set)
    decomposition_report = table_memory_report(decomposition)
    # Apples to apples: the decomposition *replaces the TCAM's match
    # stage*; action tables exist in either design, so compare without them.
    match_stage_bits = decomposition_report.total_bits - sum(
        s.bits for s in decomposition_report.structures if s.kind == "actions"
    )

    measured = TextTable(
        headers=["Category", "Structure", "Memory Kbits", "Probes/Depth", "Note"],
        title=f"Table I quantified on the {BENCH_FILTER} MAC filter "
        f"({len(rule_set)} rules; HyperCuts on a {ACL_RULES}-rule ACL)",
    )
    measured.add_row(
        [
            "Hardware-based",
            "TCAM",
            round(kbits(tcam.size().bits), 2),
            1,
            f"{len(tcam)} ternary words, expansion x{tcam.expansion_factor:.2f}",
        ]
    )
    measured.add_row(
        [
            "Hashing-based",
            "TSS",
            round(kbits(tss.size().bits), 2),
            tss.tuple_count,
            f"{tss.entry_count} hash entries in {tss.tuple_count} tuples",
        ]
    )
    stats = hypercuts.stats()
    measured.add_row(
        [
            "Trie-Geometric",
            "HyperCuts",
            "-",
            stats.max_depth,
            f"rule replication x{stats.replication_factor:.2f} "
            f"({stats.leaf_rule_refs} refs / {stats.rules} rules)",
        ]
    )
    measured.add_row(
        [
            "Decomposition",
            "this paper (match stage)",
            round(kbits(match_stage_bits), 2),
            4,  # 3 trie levels + 1 LUT stage, all parallel/pipelined
            f"{len(decomposition.index)} label tuples",
        ]
    )

    result = ExperimentResult(
        experiment_id="table1", tables=[qualitative, measured]
    )
    result.headline["tcam_kbits"] = round(kbits(tcam.size().bits), 2)
    result.headline["decomposition_match_stage_kbits"] = round(
        kbits(match_stage_bits), 2
    )
    result.headline["hypercuts_replication"] = round(stats.replication_factor, 2)
    result.headline["decomposition_beats_tcam"] = float(
        match_stage_bits < tcam.size().bits
    )
    result.notes.append(
        "the paper's Table I is qualitative; the measured companion "
        "quantifies each category, comparing match-stage memory (action "
        "tables are common to all designs)"
    )
    return result
