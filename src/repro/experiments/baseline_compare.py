"""TCAM vs decomposition — quantifying the paper's replacement claim.

"In comparison to the existing research, this work presents a solution to
replace the TCAM with a multi-field, multiple table lookup model."
(Section II.)  For a representative subset of filters this experiment
compares the SRAM-equivalent memory of a TCAM holding the rules against
the decomposition architecture's total, and verifies both return the
same classification on a packet sample.
"""

from __future__ import annotations

from repro.algorithms.tcam import Tcam
from repro.core.builder import build_lookup_table
from repro.experiments.common import mac_rule_set, routing_rule_set
from repro.experiments.registry import ExperimentResult, experiment
from repro.memory.report import table_memory_report
from repro.packet.generator import PacketGenerator, TraceConfig
from repro.util.tables import TextTable
from repro.util.units import kbits

#: Filters small enough for the TCAM's linear-scan model.
COMPARE_FILTERS = ("bbra", "bbrb", "boza", "yozb")
SAMPLE_PACKETS = 200


@experiment("baseline-tcam")
def run() -> ExperimentResult:
    table = TextTable(
        headers=[
            "Flow Filter",
            "Application",
            "TCAM Kbits",
            "Decomposition match-stage Kbits",
            "ratio",
            "agreement",
        ],
        title=(
            "TCAM vs decomposition match-stage memory (SRAM-equivalent "
            "bits; action tables excluded on both sides)"
        ),
    )
    generator = PacketGenerator(TraceConfig(seed=0xBA5E))
    wins = 0
    for name in COMPARE_FILTERS:
        for application, rule_set in (
            ("mac", mac_rule_set(name)),
            ("route", routing_rule_set(name)),
        ):
            tcam = Tcam.from_rule_set(rule_set)
            lookup_table = build_lookup_table(rule_set)
            report = table_memory_report(lookup_table)

            matches = [rule.to_match() for rule in rule_set.rules[:50]]
            trace = generator.field_trace(
                matches,
                SAMPLE_PACKETS,
                hit_rate=0.6,
                fill_fields=rule_set.field_names,
            )
            agree = 0
            for fields in trace:
                tcam_hit = tcam.lookup(fields)
                archi_hit = lookup_table.lookup(fields)
                if tcam_hit is None and archi_hit is None:
                    agree += 1
                elif (
                    tcam_hit is not None
                    and archi_hit is not None
                    and archi_hit.match == tcam_hit.to_match()
                ):
                    agree += 1
            tcam_bits = tcam.size().bits
            decomposition_bits = report.total_bits - sum(
                s.bits for s in report.structures if s.kind == "actions"
            )
            if decomposition_bits < tcam_bits:
                wins += 1
            table.add_row(
                [
                    name,
                    application,
                    round(kbits(tcam_bits), 2),
                    round(kbits(decomposition_bits), 2),
                    round(decomposition_bits / tcam_bits, 3),
                    f"{agree}/{SAMPLE_PACKETS}",
                ]
            )

    result = ExperimentResult(experiment_id="baseline-tcam", tables=[table])
    result.headline["decomposition_wins"] = float(wins)
    result.headline["comparisons"] = float(len(table.rows))
    result.notes.append(
        "TCAM cells cost ~2 SRAM bits per ternary bit; the decomposition "
        "total includes engines, index tables and action tables"
    )
    return result
