"""Fig. 4 — memory per level of the IP-address tries.

(a) the *lower* trie of the twelve regular Routing filters;
(b) both *higher and lower* tries of the outliers coza/cozb/soza/sozb,
    shown separately in the paper because of their size.

Both allocation models are reported (the paper's magnitudes follow the
full-array model; our uniform synthetic prefixes make full-array counts a
conservative upper bound).  Shape claims checked: for the outliers the
higher trie needs at least as much memory as the lower (paper: 706.06 vs
572.57 Kbits); regular filters' lower tries stay far smaller (paper:
<= 321.3 Kbits).
"""

from __future__ import annotations

from repro.experiments.common import all_filter_names, routing_ip_tries
from repro.experiments.registry import ExperimentResult, experiment
from repro.filters.paper_data import OUTLIER_ROUTING_FILTERS
from repro.memory.cost_model import MemoryModel, trie_group_cost
from repro.util.charts import GroupedBarChart
from repro.util.tables import TextTable


def regular_lower_table(model: MemoryModel) -> TextTable:
    table = TextTable(
        headers=["Flow Filter", "L1 Kbits", "L2 Kbits", "L3 Kbits", "Total Kbits"],
        title=(
            "Fig. 4(a) — memory per level, IP lower trie, regular filters "
            f"({model.value} allocation)"
        ),
    )
    for name in all_filter_names():
        if name in OUTLIER_ROUTING_FILTERS:
            continue
        costs, _ = trie_group_cost(routing_ip_tries(name), model)
        lower = costs["ipv4_dst/lo"]
        l1, l2, l3 = lower.levels
        table.add_row(
            [
                name,
                round(l1.total_kbits, 3),
                round(l2.total_kbits, 2),
                round(l3.total_kbits, 2),
                round(lower.total_kbits, 2),
            ]
        )
    return table


def outlier_table(model: MemoryModel) -> TextTable:
    table = TextTable(
        headers=[
            "Flow Filter",
            "Trie",
            "L1 Kbits",
            "L2 Kbits",
            "L3 Kbits",
            "Total Kbits",
        ],
        title=(
            "Fig. 4(b) — IP higher and lower tries, coza/cozb/soza/sozb "
            f"({model.value} allocation)"
        ),
    )
    for name in OUTLIER_ROUTING_FILTERS:
        costs, _ = trie_group_cost(routing_ip_tries(name), model)
        for trie_name, label in (("ipv4_dst/hi", "higher"), ("ipv4_dst/lo", "lower")):
            cost = costs[trie_name]
            l1, l2, l3 = cost.levels
            table.add_row(
                [
                    name,
                    label,
                    round(l1.total_kbits, 3),
                    round(l2.total_kbits, 2),
                    round(l3.total_kbits, 2),
                    round(cost.total_kbits, 2),
                ]
            )
    return table


@experiment("fig4")
def run() -> ExperimentResult:
    regular_sparse = regular_lower_table(MemoryModel.SPARSE)
    outliers_sparse = outlier_table(MemoryModel.SPARSE)
    regular_full = regular_lower_table(MemoryModel.FULL_ARRAY)
    outliers_full = outlier_table(MemoryModel.FULL_ARRAY)

    chart_a = GroupedBarChart(
        series_names=["L1", "L2", "L3"],
        title="Fig. 4(a): Kbits per level, IP lower trie (sparse)",
        unit="Kbits",
    )
    for row in regular_sparse.rows:
        chart_a.add_group(str(row[0]), [float(row[1]), float(row[2]), float(row[3])])
    chart_b = GroupedBarChart(
        series_names=["L1", "L2", "L3"],
        title="Fig. 4(b): Kbits per level, outlier IP tries (sparse)",
        unit="Kbits",
    )
    for row in outliers_sparse.rows:
        chart_b.add_group(
            f"{row[0]}/{row[1]}", [float(row[2]), float(row[3]), float(row[4])]
        )

    def by_trie(table) -> dict[tuple[str, str], float]:
        return {(str(r[0]), str(r[1])): float(r[5]) for r in table.rows}

    sparse_by_trie = by_trie(outliers_sparse)
    full_by_trie = by_trie(outliers_full)
    higher_dominates = all(
        sparse_by_trie[(name, "higher")] > sparse_by_trie[(name, "lower")]
        for name in OUTLIER_ROUTING_FILTERS
    )
    regular_max_sparse = max(float(r[4]) for r in regular_sparse.rows)

    result = ExperimentResult(
        experiment_id="fig4",
        tables=[regular_sparse, outliers_sparse, regular_full, outliers_full],
        charts=[chart_a.render(), chart_b.render()],
    )
    result.headline["max_regular_lower_kbits_sparse"] = round(regular_max_sparse, 1)
    result.headline["max_regular_lower_kbits_full"] = round(
        max(float(r[4]) for r in regular_full.rows), 1
    )
    result.headline["max_outlier_higher_kbits_sparse"] = round(
        max(sparse_by_trie[(n, "higher")] for n in OUTLIER_ROUTING_FILTERS), 1
    )
    result.headline["max_outlier_higher_kbits_full"] = round(
        max(full_by_trie[(n, "higher")] for n in OUTLIER_ROUTING_FILTERS), 1
    )
    result.headline["outlier_higher_dominates"] = float(higher_dominates)
    result.notes.append(
        "paper: outlier higher tries 706.06 Kbits vs lower 572.57 Kbits; "
        "regular lower tries <= 321.3 Kbits"
    )
    return result
