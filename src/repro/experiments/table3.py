"""Table III — number of unique field values of the flow-based MAC filter.

Runs the Section III survey over the calibrated synthetic MAC sets and
checks every cell against the published numbers (they must match exactly
— the generator is calibrated to them, and the survey recovers them
independently through the partition-entry analysis).
"""

from __future__ import annotations

from repro.analysis.survey import mac_survey_table
from repro.experiments.common import all_filter_names, mac_rule_set
from repro.experiments.registry import ExperimentResult, experiment
from repro.filters.paper_data import TABLE3_MAC_STATS


@experiment("table3")
def run() -> ExperimentResult:
    rule_sets = {name: mac_rule_set(name) for name in all_filter_names()}
    table = mac_survey_table(rule_sets)

    mismatches = 0
    for row in table.rows:
        name = str(row[0])
        expected = TABLE3_MAC_STATS[name]
        got = tuple(int(c) for c in row[1:])
        want = (
            expected.rules,
            expected.unique_vlan,
            expected.unique_eth_high,
            expected.unique_eth_mid,
            expected.unique_eth_low,
        )
        if got != want:
            mismatches += 1

    result = ExperimentResult(experiment_id="table3", tables=[table])
    result.headline["cell_mismatches_vs_paper"] = float(mismatches)
    result.headline["max_unique_vlan"] = float(
        max(s.unique_vlan for s in TABLE3_MAC_STATS.values())
    )
    result.notes.append(
        "synthetic sets are calibrated to the published counts; the survey "
        "must reproduce every cell exactly"
    )
    return result
