"""Section V.A prototype totals — "5 Mb of total memory".

Builds the evaluated prototype: 4 OpenFlow lookup tables (VLAN LUT +
Ethernet MBT for MAC learning; ingress-port LUT + IPv4 MBT for Routing).
The primary sizing uses the paper's quoted worst cases — gozb for MAC
(209 unique VLAN IDs, the largest Ethernet tries) and the largest
*regular* Routing filter, yoza — under the **full-array** trie
allocation whose magnitudes track the paper's Kbit figures.  A secondary
table reports the coza (184 909-rule) worst case.

Compared against the paper: ~5 Mbit total, ~2 Mbit for the two MBT
structures, LUTs dimensioned for 209 entries, L1 of any trie at most 32
records / 832 bits, plus the Stratix V M20K block plan.
"""

from __future__ import annotations

from repro.core.builder import build_prototype
from repro.core.architecture import MultiTableLookupArchitecture
from repro.experiments.common import (
    PROTOTYPE_MAC_FILTER,
    PROTOTYPE_ROUTING_FILTER,
    PROTOTYPE_ROUTING_WORST_CASE,
    mac_rule_set,
    routing_rule_set,
)
from repro.experiments.registry import ExperimentResult, experiment
from repro.memory.cost_model import MemoryModel
from repro.memory.report import (
    ArchitectureMemoryReport,
    architecture_memory_report,
)
from repro.util.tables import TextTable


def _prototype_report(
    routing_filter: str, model: MemoryModel
) -> tuple[MultiTableLookupArchitecture, ArchitectureMemoryReport]:
    architecture = build_prototype(
        mac_rule_set(PROTOTYPE_MAC_FILTER), routing_rule_set(routing_filter)
    )
    return architecture, architecture_memory_report(architecture, model)


def _summarise(
    name: str,
    architecture: MultiTableLookupArchitecture,
    report: ArchitectureMemoryReport,
) -> TextTable:
    lut_entries = [
        len(engine.lut)
        for table in architecture.lookup_tables
        for engine in table.luts().values()
    ]
    l1_stats = [
        (cost.levels[0].records, cost.levels[0].total_bits)
        for table_report in report.tables
        for cost in table_report.trie_costs.values()
    ]
    block_ram = report.block_ram()

    summary = TextTable(
        headers=["quantity", "measured", "paper"],
        title=name,
    )
    summary.add_row(["total memory (Mbits)", round(report.total_mbits, 2), 5.0])
    summary.add_row(["MBT memory (Mbits)", round(report.trie_mbits, 2), 2.0])
    summary.add_row(["largest LUT entries", max(lut_entries), 209])
    summary.add_row(["max L1 records", max(r for r, _ in l1_stats), 32])
    summary.add_row(["max L1 bits", max(b for _, b in l1_stats), 832])
    summary.add_row(["lookup tables", len(architecture.tables), 4])
    summary.add_row(["M20K blocks", block_ram.total_blocks, "-"])
    summary.add_row(
        ["device fraction", round(block_ram.device_fraction, 3), "-"]
    )
    return summary


@experiment("prototype")
def run() -> ExperimentResult:
    architecture, report = _prototype_report(
        PROTOTYPE_ROUTING_FILTER, MemoryModel.FULL_ARRAY
    )
    primary = _summarise(
        f"Prototype summary — {PROTOTYPE_MAC_FILTER} + "
        f"{PROTOTYPE_ROUTING_FILTER}, full-array allocation",
        architecture,
        report,
    )
    breakdown = report.to_table()

    worst_architecture, worst_report = _prototype_report(
        PROTOTYPE_ROUTING_WORST_CASE, MemoryModel.FULL_ARRAY
    )
    worst = _summarise(
        f"Secondary worst case — {PROTOTYPE_MAC_FILTER} + "
        f"{PROTOTYPE_ROUTING_WORST_CASE} (184 909 rules)",
        worst_architecture,
        worst_report,
    )

    sparse_report = architecture_memory_report(architecture, MemoryModel.SPARSE)

    lut_entries = [
        len(engine.lut)
        for table in architecture.lookup_tables
        for engine in table.luts().values()
    ]
    l1_bits = [
        cost.levels[0].total_bits
        for table_report in report.tables
        for cost in table_report.trie_costs.values()
    ]
    l1_records = [
        cost.levels[0].records
        for table_report in report.tables
        for cost in table_report.trie_costs.values()
    ]
    block_ram = report.block_ram()

    result = ExperimentResult(
        experiment_id="prototype", tables=[primary, breakdown, worst]
    )
    result.headline["total_mbits"] = round(report.total_mbits, 3)
    result.headline["total_mbits_sparse"] = round(sparse_report.total_mbits, 3)
    result.headline["mbt_mbits"] = round(report.trie_mbits, 3)
    result.headline["mbt_majority_of_algorithms"] = float(
        report.trie_bits
        > (report.total_bits - report.trie_bits)
        - sum(  # exclude action tables: they scale with rules, not algorithms
            s.bits
            for t in report.tables
            for s in t.structures
            if s.kind == "actions"
        )
    )
    result.headline["largest_lut_entries"] = float(max(lut_entries))
    result.headline["max_l1_records"] = float(max(l1_records))
    result.headline["max_l1_bits"] = float(max(l1_bits))
    result.headline["m20k_blocks"] = float(block_ram.total_blocks)
    result.headline["fits_device"] = float(block_ram.fits_device())
    result.headline["worst_case_total_mbits"] = round(worst_report.total_mbits, 3)
    result.notes.append(
        "4 lookup tables; two MBT structures (Ethernet: 3 tries, IPv4: 2 "
        "tries) and two EM LUTs (VLAN ID, ingress port), as in Section V.A"
    )
    return result
