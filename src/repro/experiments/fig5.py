"""Fig. 5 — CPU clock cycles to update the lookup algorithms.

For every filter (MAC learning and Routing applications), the software
controller generates the initial algorithm file (no label method) and the
optimised file (label method) and the update engine charges two cycles
per record.  The paper's headline: the label method saves 56.92 % of the
update cycles on average.
"""

from __future__ import annotations

from repro.experiments.common import (
    all_filter_names,
    mac_rule_set,
    routing_rule_set,
)
from repro.experiments.registry import ExperimentResult, experiment
from repro.update.controller_sim import (
    SoftwareController,
    average_saving_percent,
)
from repro.util.charts import GroupedBarChart
from repro.util.tables import TextTable


def update_cycles_table() -> tuple[TextTable, float]:
    controller = SoftwareController()
    table = TextTable(
        headers=[
            "Flow Filter",
            "Application",
            "Initial cycles",
            "Label-method cycles",
            "Saving %",
        ],
        title="Fig. 5 — algorithm update cycles, original vs label method",
    )
    comparisons = []
    for name in all_filter_names():
        for application, rule_set in (
            ("mac", mac_rule_set(name)),
            ("route", routing_rule_set(name)),
        ):
            comparison = controller.compare(rule_set)
            comparisons.append(comparison)
            table.add_row(
                [
                    name,
                    application,
                    comparison.initial.cycles,
                    comparison.optimised.cycles,
                    round(comparison.saving_percent, 2),
                ]
            )
    return table, average_saving_percent(comparisons)


@experiment("fig5")
def run() -> ExperimentResult:
    table, average_saving = update_cycles_table()
    chart = GroupedBarChart(
        series_names=["initial", "label"],
        title="Fig. 5: update cycles (per filter, MAC application)",
        unit="cycles",
    )
    for row in table.rows:
        if row[1] == "mac":
            chart.add_group(str(row[0]), [float(row[2]), float(row[3])])

    savings = [float(row[4]) for row in table.rows]
    result = ExperimentResult(
        experiment_id="fig5", tables=[table], charts=[chart.render()]
    )
    result.headline["average_saving_percent"] = round(average_saving, 2)
    result.headline["min_saving_percent"] = round(min(savings), 2)
    result.headline["all_filters_save"] = float(all(s > 0 for s in savings))
    result.notes.append(
        "paper: 56.92 % fewer CPU clock cycles on average with the label "
        "method; 2 cycles per update record"
    )
    return result
