"""Fig. 2 — total stored multi-bit-trie nodes per flow filter.

(a) Ethernet address fields: three 16-bit tries (higher/middle/lower)
    built from each MAC-learning filter;
(b) IPv4 address fields: two 16-bit tries (higher/lower) built from each
    Routing filter.

Node counts are reported under both allocation models:

- **sparse** — only existing records (lower bound; insensitive to value
  clustering);
- **full-array** — every allocated node is a complete ``2^stride`` record
  array.  This is the model whose magnitudes line up with the paper's
  quoted counts (54 010 nodes for MAC gozb; < 40 000 for Routing): the
  paper's Kbit figures divide by its record widths to full-array record
  counts.  Our synthetic values are drawn uniformly, which *maximises*
  distinct path prefixes, so full-array counts here are a conservative
  upper bound on the paper's.

Shape claims checked: gozb is (within noise) the largest MAC filter; the
Routing lower trie dominates except for coza/cozb/soza/sozb, whose
higher tries outgrow their lower tries (the Table IV anomaly propagated
into memory).
"""

from __future__ import annotations

from repro.experiments.common import (
    all_filter_names,
    mac_eth_tries,
    routing_ip_tries,
)
from repro.experiments.registry import ExperimentResult, experiment
from repro.filters.paper_data import OUTLIER_ROUTING_FILTERS
from repro.util.charts import GroupedBarChart
from repro.util.tables import TextTable


def ethernet_node_table() -> TextTable:
    table = TextTable(
        headers=[
            "Flow Filter",
            "Higher trie",
            "Middle trie",
            "Lower trie",
            "Total (sparse)",
            "Total (full-array)",
        ],
        title="Fig. 2(a) — stored MBT nodes, Ethernet address fields",
    )
    for name in all_filter_names():
        tries = mac_eth_tries(name)
        higher = tries["eth_dst/hi"].stored_nodes()
        middle = tries["eth_dst/mid"].stored_nodes()
        lower = tries["eth_dst/lo"].stored_nodes()
        full = sum(sum(t.full_array_records()) for t in tries.values())
        table.add_row([name, higher, middle, lower, higher + middle + lower, full])
    return table


def ip_node_table() -> TextTable:
    table = TextTable(
        headers=[
            "Flow Filter",
            "Higher trie",
            "Lower trie",
            "Total (sparse)",
            "Total (full-array)",
        ],
        title="Fig. 2(b) — stored MBT nodes, IPv4 address fields",
    )
    for name in all_filter_names():
        tries = routing_ip_tries(name)
        higher = tries["ipv4_dst/hi"].stored_nodes()
        lower = tries["ipv4_dst/lo"].stored_nodes()
        full = sum(sum(t.full_array_records()) for t in tries.values())
        table.add_row([name, higher, lower, higher + lower, full])
    return table


@experiment("fig2")
def run() -> ExperimentResult:
    eth_table = ethernet_node_table()
    ip_table = ip_node_table()

    eth_chart = GroupedBarChart(
        series_names=["higher", "middle", "lower"],
        title="Fig. 2(a): stored nodes per Ethernet trie (sparse)",
        unit="nodes",
    )
    for row in eth_table.rows:
        eth_chart.add_group(str(row[0]), [float(row[1]), float(row[2]), float(row[3])])
    ip_chart = GroupedBarChart(
        series_names=["higher", "lower"],
        title="Fig. 2(b): stored nodes per IPv4 trie (sparse)",
        unit="nodes",
    )
    for row in ip_table.rows:
        ip_chart.add_group(str(row[0]), [float(row[1]), float(row[2])])

    eth_sparse = {str(r[0]): int(r[4]) for r in eth_table.rows}
    eth_full = {str(r[0]): int(r[5]) for r in eth_table.rows}
    ip_high = {str(r[0]): int(r[1]) for r in ip_table.rows}
    ip_low = {str(r[0]): int(r[2]) for r in ip_table.rows}
    measured_outliers = tuple(
        name for name in all_filter_names() if ip_high[name] > ip_low[name]
    )
    max_sparse = max(eth_sparse.values())
    gozb_gap_percent = 100.0 * (max_sparse - eth_sparse["gozb"]) / max_sparse

    result = ExperimentResult(
        experiment_id="fig2",
        tables=[eth_table, ip_table],
        charts=[eth_chart.render(), ip_chart.render()],
    )
    result.headline["max_eth_nodes_sparse"] = float(max_sparse)
    result.headline["max_eth_nodes_full_array"] = float(max(eth_full.values()))
    result.headline["gozb_gap_vs_max_percent"] = round(gozb_gap_percent, 2)
    result.headline["max_ip_nodes_sparse"] = float(
        max(h + l for h, l in zip(ip_high.values(), ip_low.values()))
    )
    result.headline["ip_outliers_match_paper"] = float(
        measured_outliers == OUTLIER_ROUTING_FILTERS
    )
    result.notes.append(
        "paper: max 54 010 stored nodes (MAC gozb, full-array scale); "
        "routing < 40 000 nodes; gozb vs goza is within synthetic-identity "
        "noise (<1 % of total)"
    )
    return result
