"""Table II — OpenFlow match field, field length and matching method.

Regenerated straight from the library's OXM field registry, plus the
paper's surrounding claims: 39 match fields excluding the 64-bit
metadata register, of which 15 are the common fields analysed.
"""

from __future__ import annotations

from repro.experiments.registry import ExperimentResult, experiment
from repro.openflow.fields import REGISTRY, paper_table2_fields
from repro.util.tables import TextTable


@experiment("table2")
def run() -> ExperimentResult:
    table = TextTable(
        headers=["Matching Field", "Number of Bits", "Matching Method Required"],
        title="Table II — OpenFlow match fields (common fields)",
    )
    for definition in paper_table2_fields():
        method = {
            "EM": "Exact Matching (EM)",
            "LPM": "Wildcard matching (LPM)",
            "RM": "Wildcard matching (RM)",
        }[definition.method.value]
        table.add_row([definition.paper_name, definition.bits, method])

    result = ExperimentResult(experiment_id="table2", tables=[table])
    result.headline["match_fields_excluding_metadata"] = float(
        REGISTRY.match_field_count(exclude_metadata=True)
    )
    result.headline["common_fields"] = float(len(REGISTRY.common_fields()))
    result.headline["metadata_bits"] = float(REGISTRY["metadata"].bits)
    result.notes.append(
        "paper: 39 match fields excluding metadata; 15 common fields; "
        "64-bit metadata register"
    )
    return result
