"""Experiment registration and execution plumbing."""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Callable

from repro.util.tables import TextTable


@dataclass
class ExperimentResult:
    """Everything one experiment produced.

    Attributes:
        experiment_id: the paper artifact id (``table3``, ``fig2a`` ...).
        tables: regenerated tables, written to CSV by the runner.
        charts: rendered ASCII charts (figures).
        headline: scalar take-aways for EXPERIMENTS.md (e.g. measured
            total Mbits, average saving percent).
        notes: free-form commentary (substitutions, caveats).
    """

    experiment_id: str
    tables: list[TextTable] = field(default_factory=list)
    charts: list[str] = field(default_factory=list)
    headline: dict[str, float] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        parts: list[str] = [f"== Experiment {self.experiment_id} =="]
        for table in self.tables:
            parts.append(table.to_markdown())
        parts.extend(self.charts)
        if self.headline:
            parts.append(
                "headline: "
                + ", ".join(f"{k}={v:g}" for k, v in sorted(self.headline.items()))
            )
        parts.extend(f"note: {note}" for note in self.notes)
        return "\n\n".join(parts)

    def write_csvs(self, directory: Path) -> list[Path]:
        written = []
        for i, table in enumerate(self.tables):
            suffix = "" if len(self.tables) == 1 else f"-{i}"
            path = directory / f"{self.experiment_id}{suffix}.csv"
            table.write_csv(path)
            written.append(path)
        return written


ExperimentFn = Callable[[], ExperimentResult]

_REGISTRY: dict[str, ExperimentFn] = {}


def experiment(experiment_id: str) -> Callable[[ExperimentFn], ExperimentFn]:
    """Decorator registering an experiment under its artifact id."""

    def register(fn: ExperimentFn) -> ExperimentFn:
        if experiment_id in _REGISTRY:
            raise ValueError(f"duplicate experiment id {experiment_id!r}")
        _REGISTRY[experiment_id] = fn
        return fn

    return register


def all_experiments() -> dict[str, ExperimentFn]:
    return dict(_REGISTRY)


def get_experiment(experiment_id: str) -> ExperimentFn:
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None


def results_dir() -> Path:
    """Where CSV outputs land (``REPRO_RESULTS_DIR`` or ``./results``)."""
    return Path(os.environ.get("REPRO_RESULTS_DIR", "results"))


def run_experiment(experiment_id: str, write_csv: bool = True) -> ExperimentResult:
    """Execute one experiment, optionally persisting its CSVs."""
    result = get_experiment(experiment_id)()
    if write_csv:
        result.write_csvs(results_dir())
    return result
