"""Throughput experiment: cache/batch counters next to the memory claims.

The paper's tables cost the architecture's *memory*; this experiment
reports what the runtime layer gets out of it — packets/sec, microflow
and megaflow hit rates, megaflow occupancy, waves per batch and
per-entry flow-stats totals for every scenario in the catalog — then a
sharded (shared-memory transport) replay whose parent-side flow stats
must agree with the single-process counters, and finally the post-churn
memory breakdown (action-table free-list high-water mark and flow
counters included) so the throughput, monitoring and memory sides of
the story land in one report.
"""

from __future__ import annotations

import time

from repro.core.architecture import MultiTableLookupArchitecture
from repro.core.builder import build_lookup_table
from repro.experiments.registry import ExperimentResult, experiment
from repro.filters.paper_data import RoutingFilterStats
from repro.filters.synthetic import generate_routing_set
from repro.memory.report import architecture_memory_report
from repro.runtime import (
    BatchPipeline,
    SCENARIOS,
    ShardedBatchPipeline,
    StreamConfig,
    bursty_arrivals,
    run_stream,
    run_workload,
    widen_rule_set,
)
from repro.util.tables import TextTable

#: A bbra-scale synthetic routing row: big enough for real hit-rate
#: structure, small enough that the full catalog replays in seconds.
_STATS = RoutingFilterStats("tput", 400, 12, 40, 90)
_PACKETS = 4000
_FLOWS = 64


@experiment("throughput")
def run() -> ExperimentResult:
    result = ExperimentResult(experiment_id="throughput")
    rule_set = widen_rule_set(
        generate_routing_set(_STATS, seed=29), noise_field="tcp_src"
    )

    table = TextTable(
        headers=[
            "scenario",
            "packets",
            "pkts/sec",
            "Mbit/s",
            "microflow hit%",
            "megaflow hit%",
            "megaflow entries",
            "masks",
            "waves/batch",
            "flow pkts",
            "flow MB",
            "expired",
            "sweep lanes",
        ],
        title="Two-tier cached batch runtime, per scenario (IMIX frames)",
    )
    last_arch = None
    for name in sorted(SCENARIOS):
        workload = SCENARIOS[name](
            rule_set, packet_count=_PACKETS, flow_count=_FLOWS, frame_len="imix"
        )
        arch = MultiTableLookupArchitecture([build_lookup_table(rule_set)])
        runner = BatchPipeline(arch, cache_capacity=4096, megaflow_capacity=4096)
        started = time.perf_counter()
        stats = run_workload(runner, workload, batch_size=256)
        elapsed = time.perf_counter() - started
        pps = stats.packets / elapsed if elapsed > 0 else 0.0
        mbps = 8 * workload.byte_count / elapsed / 1e6 if elapsed > 0 else 0.0
        megaflow = runner.megaflow
        table.add_row(
            [
                name,
                stats.packets,
                f"{pps:,.0f}",
                f"{mbps:,.1f}",
                f"{100 * stats.cache_hit_rate:.1f}",
                f"{100 * stats.megaflow_hit_rate:.1f}",
                len(megaflow),
                megaflow.mask_count,
                f"{stats.waves_per_batch:.2f}",
                stats.flow_packets,
                f"{stats.flow_bytes / 1e6:.2f}",
                stats.expired,
                runner.lifecycle.stats.entries_scanned,
            ]
        )
        result.headline[f"{name.replace('-', '_')}_pkts_per_sec"] = round(pps)
        result.headline[f"{name.replace('-', '_')}_mbit_per_sec"] = round(
            mbps, 1
        )
        if name == "timeout-churn":
            # Lifecycle cost next to the throughput it taxes: entries
            # removed by the sweeps, entry lanes the sweeps examined,
            # and the marginal wall cost of one steady-state sweep over
            # the live table (a dt=0 advance sweeps without moving
            # time, so nothing expires and no version bumps).
            result.headline["timeout_churn_expired_entries"] = stats.expired
            result.headline["timeout_churn_sweep_entry_lanes"] = (
                runner.lifecycle.stats.entries_scanned
            )
            reps = 50
            started = time.perf_counter()
            for _ in range(reps):
                runner.advance_clock(0)
            sweep_us = (time.perf_counter() - started) / reps * 1e6
            result.headline["timeout_churn_sweep_us"] = round(sweep_us, 1)
            result.notes.append(
                f"timeout-churn: {stats.expired} entries expired over "
                f"{stats.advances} sweeps "
                f"({runner.lifecycle.stats.entries_scanned} entry lanes "
                f"scanned); a steady-state sweep of the live table costs "
                f"~{sweep_us:.1f} us"
            )
        if name == "uniform-wide":
            result.headline["uniform_wide_megaflow_hit_rate"] = round(
                stats.megaflow_hit_rate, 3
            )
            result.headline["uniform_wide_microflow_hit_rate"] = round(
                stats.cache_hit_rate, 3
            )
        last_arch = arch if name == "churn" else last_arch
    result.tables.append(table)

    # Sharded stats-return check: replay zipf through the *pipelined*
    # shared-memory transport (depth 4) and compare parent-side flow
    # stats — packets and bytes — with a single-process run; the
    # counters the PR-2 runner silently dropped, the byte side zero
    # until PR 4 gave packets frame lengths.
    workload = SCENARIOS["zipf"](
        rule_set, packet_count=_PACKETS, flow_count=_FLOWS, frame_len="imix"
    )
    single = BatchPipeline(
        MultiTableLookupArchitecture([build_lookup_table(rule_set)]),
        cache_capacity=4096,
        megaflow_capacity=4096,
    )
    single_stats = run_workload(single, workload, batch_size=256)
    with ShardedBatchPipeline(
        MultiTableLookupArchitecture([build_lookup_table(rule_set)]),
        workers=2,
        cache_capacity=4096,
        megaflow_capacity=4096,
        transport="shm",
        depth=4,
    ) as sharded:
        sharded_stats = run_workload(sharded, workload, batch_size=256)
        supervision = sharded.supervision_snapshot()
    result.headline["sharded_shm_flow_packets"] = sharded_stats.flow_packets
    result.headline["single_flow_packets"] = single_stats.flow_packets
    result.headline["sharded_shm_flow_bytes"] = sharded_stats.flow_bytes
    result.headline["single_flow_bytes"] = single_stats.flow_bytes
    # Supervision counters for the same run: a healthy pipeline must
    # report zero restarts / replayed batches / fallback-inline packets,
    # so any nonzero value here flags recovery machinery leaking into
    # the fault-free path.
    result.headline["sharded_shm_worker_restarts"] = supervision["restarts"]
    result.headline["sharded_shm_replayed_batches"] = supervision[
        "replayed_batches"
    ]
    result.headline["sharded_shm_inline_packets"] = supervision[
        "inline_packets"
    ]
    agree = (
        sharded_stats.flow_packets == single_stats.flow_packets
        and sharded_stats.flow_bytes == single_stats.flow_bytes
    )
    result.notes.append(
        "sharded(shm, pipelined depth=4) parent-side flow stats "
        f"{'match' if agree else 'DIVERGE FROM'} the single-process run "
        f"({sharded_stats.flow_packets} vs {single_stats.flow_packets} pkts, "
        f"{sharded_stats.flow_bytes} vs {single_stats.flow_bytes} bytes)"
    )

    # Open-loop streaming: the same bursty arrivals replayed twice,
    # once against a declared service rate the bursts overwhelm and
    # once with headroom.  Overload must shed (deterministically — the
    # recorded counters are replayable by seed); with capacity above
    # the offered load, shedding anything would be a bug, so shed==0 is
    # asserted, not just reported.
    schedule = bursty_arrivals(
        rule_set,
        packet_count=_PACKETS // 2,
        mean_burst=24.0,
        burst_gap=16.0,
        seed=11,
    )
    overloaded = run_stream(
        BatchPipeline(
            MultiTableLookupArchitecture([build_lookup_table(rule_set)]),
            cache_capacity=4096,
            megaflow_capacity=4096,
        ),
        schedule,
        StreamConfig(capacity=64, batch_size=16, window=2, service_rate=0.5),
    )
    relaxed = run_stream(
        BatchPipeline(
            MultiTableLookupArchitecture([build_lookup_table(rule_set)]),
            cache_capacity=4096,
            megaflow_capacity=4096,
        ),
        schedule,
        StreamConfig(capacity=4096, batch_size=256, window=4),
    )
    assert relaxed.shed_packets == 0, (
        "unlimited service rate with capacity above the offered load "
        f"must not shed, yet {relaxed.shed_packets} packets were dropped"
    )
    result.headline["stream_offered_load_pkts_per_tick"] = round(
        schedule.offered_load, 4
    )
    result.headline["stream_overload_shed_packets"] = overloaded.shed_packets
    result.headline["stream_overload_shed_rate"] = round(
        overloaded.shed_rate, 4
    )
    result.headline["stream_overload_p50_ticks"] = overloaded.p50
    result.headline["stream_overload_p99_ticks"] = overloaded.p99
    result.headline["stream_overload_p999_ticks"] = overloaded.p999
    result.headline["stream_overload_max_degrade_level"] = overloaded.max_level
    result.headline["stream_relaxed_shed_packets"] = relaxed.shed_packets
    result.headline["stream_relaxed_p99_ticks"] = relaxed.p99
    shed_reasons = ", ".join(
        f"{reason}={count}"
        for reason, count in sorted(overloaded.shed_by_reason.items())
    )
    result.notes.append(
        "open-loop streaming (bursty, "
        f"{schedule.offered_load:.2f} pkts/tick offered): at service rate "
        f"0.5/tick the runtime shed {overloaded.shed_packets} packets "
        f"({shed_reasons}) with p99 {overloaded.p99} ticks; with headroom "
        f"it shed 0 (asserted) at p99 {relaxed.p99} ticks"
    )

    # Memory context: the post-churn breakdown, free-list HWM included.
    assert last_arch is not None
    memory = architecture_memory_report(last_arch)
    result.tables.append(memory.to_table())
    result.headline["total_mbits"] = round(memory.total_mbits, 3)
    result.headline["churn_action_free_hwm"] = last_arch.lookup_tables[
        0
    ].actions.free_high_water
    result.notes.append(
        "throughput measured on the batched two-tier (microflow+megaflow) "
        "path; 'actions (free hwm)' is the churn compaction headroom "
        "(excluded from TOTAL)"
    )
    return result
