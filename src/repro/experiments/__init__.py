"""Experiment harness: one module per table/figure of the paper.

Every experiment is registered under its paper artifact id and can be run
individually or in bulk::

    python -m repro.experiments            # run everything
    python -m repro.experiments table3 fig5

Each run prints the regenerated table (markdown) or figure (ASCII chart)
and writes machine-readable CSV into ``results/`` (override with the
``REPRO_RESULTS_DIR`` environment variable).  EXPERIMENTS.md records the
paper-vs-measured comparison for each artifact.
"""

from repro.experiments.registry import (
    ExperimentResult,
    all_experiments,
    get_experiment,
    run_experiment,
)

# Importing the experiment modules registers them.
from repro.experiments import (  # noqa: E402,F401  (registration imports)
    ablation,
    baseline_compare,
    fig2,
    fig3,
    fig4,
    fig5,
    prototype,
    table1,
    table2,
    table3,
    table4,
    throughput,
)

__all__ = [
    "ExperimentResult",
    "all_experiments",
    "get_experiment",
    "run_experiment",
]
