"""Command-line experiment runner.

Usage::

    python -m repro.experiments               # every experiment
    python -m repro.experiments table3 fig5   # a selection
    python -m repro.experiments --list
    repro-experiments fig2                    # console-script alias
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.registry import (
    all_experiments,
    results_dir,
    run_experiment,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids to run (default: all)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiment ids and exit"
    )
    parser.add_argument(
        "--no-csv", action="store_true", help="skip writing CSVs to results/"
    )
    args = parser.parse_args(argv)

    registry = all_experiments()
    if args.list:
        for experiment_id in sorted(registry):
            print(experiment_id)
        return 0

    selected = args.experiments or sorted(registry)
    unknown = [e for e in selected if e not in registry]
    if unknown:
        parser.error(
            f"unknown experiment(s): {', '.join(unknown)}; "
            f"known: {', '.join(sorted(registry))}"
        )

    for experiment_id in selected:
        started = time.perf_counter()
        result = run_experiment(experiment_id, write_csv=not args.no_csv)
        elapsed = time.perf_counter() - started
        print(result.render())
        print(f"[{experiment_id} completed in {elapsed:.1f}s]")
        print()
    if not args.no_csv:
        print(f"CSV outputs in {results_dir().resolve()}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
