"""Fig. 3 — memory per level of the Ethernet *lower* trie.

For every MAC filter, the Kbits of each level (L1/L2/L3) of the lower
16-bit Ethernet trie under the shared worst-case record format of the
filter's trie group.  Reported under both allocation models; the
**full-array** model is the one whose magnitudes track the paper
(our gozb total lands within ~6 % of the paper's 983.7 Kbits).

Shape claims checked:

- L1 is tiny everywhere: at most 32 records / under 1 Kbit (the paper
  states 832 bits for its worst case);
- L3 dominates for these exact-valued filters;
- gozb needs the most total memory.
"""

from __future__ import annotations

from repro.experiments.common import all_filter_names, mac_eth_tries
from repro.experiments.registry import ExperimentResult, experiment
from repro.memory.cost_model import MemoryModel, trie_group_cost
from repro.util.charts import GroupedBarChart
from repro.util.tables import TextTable


def ethernet_lower_level_table(model: MemoryModel) -> TextTable:
    table = TextTable(
        headers=[
            "Flow Filter",
            "L1 Kbits",
            "L2 Kbits",
            "L3 Kbits",
            "Total Kbits",
            "L1 records",
            "L1 record bits",
        ],
        title=(
            "Fig. 3 — memory per level, Ethernet lower trie "
            f"({model.value} allocation)"
        ),
    )
    for name in all_filter_names():
        tries = mac_eth_tries(name)
        costs, node_format = trie_group_cost(tries, model)
        lower = costs["eth_dst/lo"]
        l1, l2, l3 = lower.levels
        table.add_row(
            [
                name,
                round(l1.total_kbits, 3),
                round(l2.total_kbits, 2),
                round(l3.total_kbits, 2),
                round(lower.total_kbits, 2),
                l1.records,
                node_format.record_bits(1),
            ]
        )
    return table


@experiment("fig3")
def run() -> ExperimentResult:
    full = ethernet_lower_level_table(MemoryModel.FULL_ARRAY)
    sparse = ethernet_lower_level_table(MemoryModel.SPARSE)

    chart = GroupedBarChart(
        series_names=["L1", "L2", "L3"],
        title="Fig. 3: Kbits per level, Ethernet lower trie (full-array)",
        unit="Kbits",
    )
    for row in full.rows:
        chart.add_group(str(row[0]), [float(row[1]), float(row[2]), float(row[3])])

    totals = {str(r[0]): float(r[4]) for r in full.rows}
    l1_bits = {str(r[0]): float(r[1]) * 1024 for r in full.rows}
    l1_records = {str(r[0]): int(r[5]) for r in full.rows}

    result = ExperimentResult(
        experiment_id="fig3", tables=[full, sparse], charts=[chart.render()]
    )
    result.headline["max_total_kbits_full_array"] = round(max(totals.values()), 1)
    result.headline["max_total_kbits_sparse"] = round(
        max(float(r[4]) for r in sparse.rows), 1
    )
    result.headline["max_is_gozb"] = float(max(totals, key=totals.get) == "gozb")  # type: ignore[arg-type]
    result.headline["max_l1_records"] = float(max(l1_records.values()))
    result.headline["max_l1_bits"] = round(max(l1_bits.values()), 0)
    result.notes.append(
        "paper: L1 stores at most 32 nodes in 832 bits; max total "
        "983.7 Kbits (gozb) — compare the full-array table"
    )
    return result
