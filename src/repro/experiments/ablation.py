"""Design-choice ablations.

Two ablations back the paper's key decisions with measurements:

- **strides** — the 3-level trie distribution (the paper adopts 3 levels
  from its reference [22] as "optimal for a tradeoff between fast lookup
  and efficient memory space").  We sweep 1..8-level distributions over
  the worst-case Ethernet lower trie and report stored records, memory
  and pipeline depth.
- **labels** — the label method vs storing every rule's value copy
  (Section IV.B), plus sparse vs full-array record allocation.
"""

from __future__ import annotations

from repro.analysis.replication import total_repetition
from repro.experiments.common import (
    PROTOTYPE_MAC_FILTER,
    all_filter_names,
    build_partition_tries,
    mac_rule_set,
)
from repro.experiments.registry import ExperimentResult, experiment
from repro.core.config import ArchitectureConfig
from repro.memory.cost_model import MemoryModel, trie_group_cost
from repro.util.tables import TextTable

#: Stride distributions swept by the ablation (all sum to 16).
STRIDE_OPTIONS: tuple[tuple[int, ...], ...] = (
    (16,),
    (8, 8),
    (6, 5, 5),
    (5, 5, 6),
    (4, 4, 4, 4),
    (2, 2, 2, 2, 2, 2, 2, 2),
)


def stride_sweep_table(filter_name: str = PROTOTYPE_MAC_FILTER) -> TextTable:
    """Sweep stride distributions over the worst-case Ethernet lower trie.

    Levels = pipeline stages = memory accesses per lookup; sparse vs
    full-array memory bound the implementation choices.  The trade-off
    the paper adopts from its reference [22]: few levels lose memory to
    expansion/full arrays, many levels lose lookup latency.
    """
    rule_set = mac_rule_set(filter_name)
    table = TextTable(
        headers=[
            "strides",
            "levels (pipeline stages)",
            "sparse records",
            "sparse Kbits",
            "full-array records",
            "full-array Kbits",
        ],
        title=f"Stride ablation — Ethernet lower trie, {filter_name} filter",
    )
    for strides in STRIDE_OPTIONS:
        config = ArchitectureConfig(strides=strides)
        tries = build_partition_tries(rule_set, "eth_dst", config)
        sparse, _ = trie_group_cost(tries, MemoryModel.SPARSE)
        full, _ = trie_group_cost(tries, MemoryModel.FULL_ARRAY)
        table.add_row(
            [
                "/".join(str(s) for s in strides),
                len(strides),
                sum(level.records for level in sparse["eth_dst/lo"].levels),
                round(sparse["eth_dst/lo"].total_kbits, 2),
                sum(level.records for level in full["eth_dst/lo"].levels),
                round(full["eth_dst/lo"].total_kbits, 2),
            ]
        )
    return table


def label_ablation_table() -> TextTable:
    table = TextTable(
        headers=[
            "Flow Filter",
            "entries w/o labels",
            "unique entries (labels)",
            "storage saving %",
        ],
        title="Label-method ablation — stored entries with vs without labels",
    )
    for name in all_filter_names():
        repetition = total_repetition(mac_rule_set(name))
        table.add_row(
            [
                name,
                repetition.total_entries,
                repetition.unique_entries,
                round(100.0 * repetition.saving_fraction, 2),
            ]
        )
    return table


def allocation_ablation_table(filter_name: str = PROTOTYPE_MAC_FILTER) -> TextTable:
    tries = build_partition_tries(mac_rule_set(filter_name), "eth_dst")
    table = TextTable(
        headers=["model", "trie", "records", "memory Kbits"],
        title=f"Record-allocation ablation — Ethernet tries, {filter_name}",
    )
    for model in (MemoryModel.SPARSE, MemoryModel.FULL_ARRAY):
        costs, _ = trie_group_cost(tries, model)
        for name, cost in costs.items():
            table.add_row(
                [
                    model.value,
                    name,
                    sum(level.records for level in cost.levels),
                    round(cost.total_kbits, 2),
                ]
            )
    return table


@experiment("ablation")
def run() -> ExperimentResult:
    strides = stride_sweep_table()
    labels = label_ablation_table()
    allocation = allocation_ablation_table()

    three_level_rows = [row for row in strides.rows if int(row[1]) == 3]

    result = ExperimentResult(
        experiment_id="ablation", tables=[strides, labels, allocation]
    )
    result.headline["three_level_sparse_kbits"] = float(three_level_rows[-1][3])
    result.headline["three_level_full_kbits"] = float(three_level_rows[-1][5])
    result.headline["single_level_full_kbits"] = float(strides.rows[0][5])
    result.headline["mean_label_saving_percent"] = round(
        sum(float(r[3]) for r in labels.rows) / len(labels.rows), 2
    )
    result.notes.append(
        "3 levels = 3 pipeline stages; the flat single-level layout costs "
        "a full 2^16 array under hardware (full-array) allocation, while "
        "deep unibit-like distributions save memory at 8+ accesses per "
        "lookup — the trade-off behind the paper's 3-level choice"
    )
    return result
