"""Shared helpers for experiments: cached rule sets and built tries.

Building the four ~185 k-rule Routing sets dominates experiment start-up,
so everything heavy is cached at module level and shared across
experiments and benchmarks.
"""

from __future__ import annotations

import functools

from repro.algorithms.multibit_trie import MultibitTrie
from repro.core.config import ArchitectureConfig, DEFAULT_CONFIG
from repro.filters.paper_data import FILTER_NAMES
from repro.filters.partitions import partition_entries, partition_scheme
from repro.filters.rule import RuleSet
from repro.filters.synthetic import mac_set, routing_set
from repro.openflow.fields import REGISTRY
from repro.openflow.match import WildcardMatch

#: Filters used by the prototype experiment (Section V.A): gozb has the
#: most unique VLAN IDs (209, the paper's quoted LUT worst case) and the
#: largest Ethernet tries; yoza is the largest *regular* Routing filter.
#: The paper's 5 Mbit total is consistent with sizing for these two use
#: cases — the 180 k-rule outliers (coza...) are treated separately in
#: Fig. 4(b), and a 185 k-entry action table alone would exceed 5 Mbit.
PROTOTYPE_MAC_FILTER = "gozb"
PROTOTYPE_ROUTING_FILTER = "yoza"
#: The largest Routing filter, reported as a secondary worst case.
PROTOTYPE_ROUTING_WORST_CASE = "coza"


def mac_rule_set(name: str) -> RuleSet:
    return mac_set(name)


def routing_rule_set(name: str) -> RuleSet:
    return routing_set(name)


def build_partition_tries(
    rule_set: RuleSet,
    field_name: str,
    config: ArchitectureConfig = DEFAULT_CONFIG,
) -> dict[str, MultibitTrie]:
    """Build the per-partition tries of one LPM field from a rule set.

    This is the lightweight path used by the figure experiments: it feeds
    the tries exactly the unique labelled entries the full architecture
    would, without building index/action machinery.
    """
    definition = REGISTRY[field_name]
    scheme = partition_scheme(field_name, definition.bits, config.part_bits)
    tries = {
        part.name: MultibitTrie(key_bits=part.bits, strides=config.strides)
        for part in scheme
    }
    allocators: dict[str, dict[tuple[int, int], int]] = {
        part.name: {} for part in scheme
    }
    for rule in rule_set:
        predicate = rule.fields.get(field_name)
        if predicate is None or isinstance(predicate, WildcardMatch):
            continue
        for part, entry in zip(scheme, partition_entries(predicate, scheme)):
            if entry is None:
                continue
            labels = allocators[part.name]
            if entry in labels:
                continue
            labels[entry] = len(labels) + 1
            tries[part.name].insert(entry[0], entry[1], labels[entry])
    return tries


@functools.lru_cache(maxsize=None)
def mac_eth_tries(name: str) -> dict[str, MultibitTrie]:
    """Cached Ethernet (hi/mid/lo) tries for one MAC filter."""
    return build_partition_tries(mac_rule_set(name), "eth_dst")


@functools.lru_cache(maxsize=None)
def routing_ip_tries(name: str) -> dict[str, MultibitTrie]:
    """Cached IPv4 (hi/lo) tries for one Routing filter."""
    return build_partition_tries(routing_rule_set(name), "ipv4_dst")


def all_filter_names() -> tuple[str, ...]:
    return FILTER_NAMES
