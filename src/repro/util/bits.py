"""Bit-level and prefix arithmetic.

All header fields, rule fields and trie keys in this project are plain
Python integers accompanied by an explicit bit width.  Prefixes are
``(value, length)`` pairs where ``value`` occupies the *most significant*
``length`` bits of a ``width``-bit field and the remaining bits are zero —
the conventional CIDR representation generalised to any field width.
"""

from __future__ import annotations


def mask_of(width: int) -> int:
    """Return a mask with the low ``width`` bits set (``width >= 0``)."""
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")
    return (1 << width) - 1


def bits_needed(count: int) -> int:
    """Return the number of bits needed to address ``count`` distinct items.

    ``bits_needed(0)`` and ``bits_needed(1)`` are both 0; otherwise this is
    ``ceil(log2(count))``.  Used to size child pointers and labels.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if count <= 1:
        return 0
    return (count - 1).bit_length()


def bit_slice(value: int, width: int, offset: int, length: int) -> int:
    """Extract ``length`` bits from ``value`` starting ``offset`` bits from the MSB.

    ``value`` is interpreted as a ``width``-bit integer.  ``offset=0``
    selects the most significant bits, matching how packet headers and
    prefixes are read left to right.

    >>> bit_slice(0xABCD, 16, 0, 8)
    171
    >>> bit_slice(0xABCD, 16, 8, 8)
    205
    """
    if not 0 <= offset and not 0 <= length:
        raise ValueError("offset and length must be non-negative")
    if offset + length > width:
        raise ValueError(
            f"slice [{offset}, {offset + length}) exceeds field width {width}"
        )
    shift = width - offset - length
    return (value >> shift) & mask_of(length)


def split_value(value: int, width: int, part_width: int) -> tuple[int, ...]:
    """Split a ``width``-bit value into ``part_width``-bit partitions, MSB first.

    This implements the 16-bit field partitioning of the paper's filter
    analysis (Section III): a 48-bit Ethernet address becomes
    (higher, middle, lower) 16-bit values and a 32-bit IPv4 address becomes
    (higher, lower).

    >>> split_value(0x112233445566, 48, 16)
    (4386, 13124, 21862)
    """
    if width % part_width != 0:
        raise ValueError(f"width {width} is not a multiple of part width {part_width}")
    count = width // part_width
    return tuple(
        bit_slice(value, width, i * part_width, part_width) for i in range(count)
    )


def prefix_mask(length: int, width: int) -> int:
    """Return the ``width``-bit mask selecting the top ``length`` bits.

    >>> hex(prefix_mask(24, 32))
    '0xffffff00'
    """
    if not 0 <= length <= width:
        raise ValueError(f"prefix length {length} outside [0, {width}]")
    return mask_of(width) ^ mask_of(width - length)


def prefix_covers_value(prefix: int, length: int, value: int, width: int) -> bool:
    """Return True if the ``length``-bit prefix matches the ``width``-bit value."""
    return (value & prefix_mask(length, width)) == (prefix & prefix_mask(length, width))


def prefix_contains(
    outer: tuple[int, int], inner: tuple[int, int], width: int
) -> bool:
    """Return True if prefix ``outer`` contains prefix ``inner``.

    Both prefixes are ``(value, length)`` pairs over a ``width``-bit field.
    A prefix contains another iff it is no longer and the shorter prefix
    bits agree.
    """
    outer_value, outer_len = outer
    inner_value, inner_len = inner
    if outer_len > inner_len:
        return False
    return prefix_covers_value(outer_value, outer_len, inner_value, width)


def prefix_range(prefix: int, length: int, width: int) -> tuple[int, int]:
    """Return the inclusive ``(low, high)`` value range covered by a prefix.

    >>> prefix_range(0x0A000000, 8, 32)
    (167772160, 184549375)
    """
    mask = prefix_mask(length, width)
    low = prefix & mask
    high = low | (mask_of(width) ^ mask)
    return low, high


def canonical_prefix(value: int, length: int, width: int) -> tuple[int, int]:
    """Normalise a prefix so bits below ``length`` are zero.

    Rule files occasionally carry junk in the host bits of a prefix entry;
    canonicalising makes prefix identity (and therefore the label method's
    unique-value counting) well defined.
    """
    return value & prefix_mask(length, width), length
