"""Memory-unit helpers.

The paper reports memory in Kbits and Mbits using the binary convention
(1 Kbit = 1024 bits), e.g. "832 bits ... less than 1 Kbit" and
"5 Mb of total memory".  All cost-model code stores raw bit counts and
converts for presentation only.
"""

from __future__ import annotations

BITS_PER_KBIT = 1024
BITS_PER_MBIT = 1024 * 1024


def kbits(bits: int | float) -> float:
    """Convert a bit count to Kbits (1 Kbit = 1024 bits)."""
    return bits / BITS_PER_KBIT


def mbits(bits: int | float) -> float:
    """Convert a bit count to Mbits (1 Mbit = 1024 Kbits)."""
    return bits / BITS_PER_MBIT


def format_bits(bits: int | float) -> str:
    """Render a bit count with an adaptive unit, matching the paper's style.

    >>> format_bits(832)
    '832 bits'
    >>> format_bits(586_311)
    '572.57 Kbits'
    >>> format_bits(5 * BITS_PER_MBIT)
    '5.00 Mbits'
    """
    if bits >= BITS_PER_MBIT:
        return f"{mbits(bits):.2f} Mbits"
    if bits >= BITS_PER_KBIT:
        return f"{kbits(bits):.2f} Kbits"
    return f"{bits:.0f} bits"
