"""Plain-text table rendering and CSV emission.

The experiment harness regenerates every table and figure of the paper as
(a) a GitHub-flavoured markdown table printed to stdout and (b) a CSV file
under ``results/``.  This module is the single place that owns both
renderings so every experiment formats identically.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Iterable, Sequence


def _render_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


@dataclass
class TextTable:
    """An ordered collection of rows with a fixed header.

    >>> t = TextTable(["filter", "rules"])
    >>> t.add_row(["bbra", 507])
    >>> print(t.to_markdown())
    | filter | rules |
    | --- | --- |
    | bbra | 507 |
    """

    headers: Sequence[str]
    title: str = ""
    rows: list[list[object]] = field(default_factory=list)

    def add_row(self, row: Iterable[object]) -> None:
        values = list(row)
        if len(values) != len(self.headers):
            raise ValueError(
                f"row has {len(values)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(values)

    def column(self, name: str) -> list[object]:
        """Return the values of the named column, in row order."""
        try:
            index = list(self.headers).index(name)
        except ValueError:
            raise KeyError(f"no column named {name!r}") from None
        return [row[index] for row in self.rows]

    def to_markdown(self) -> str:
        lines = []
        if self.title:
            lines.append(f"### {self.title}")
            lines.append("")
        lines.append("| " + " | ".join(self.headers) + " |")
        lines.append("| " + " | ".join("---" for _ in self.headers) + " |")
        for row in self.rows:
            lines.append("| " + " | ".join(_render_cell(c) for c in row) + " |")
        return "\n".join(lines)

    def to_csv(self) -> str:
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(self.headers)
        for row in self.rows:
            writer.writerow([_render_cell(c) for c in row])
        return buffer.getvalue()

    def write_csv(self, path: str | Path) -> Path:
        """Write the table as CSV, creating parent directories as needed."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(self.to_csv())
        return target


def read_csv_table(path: str | Path) -> TextTable:
    """Load a :class:`TextTable` previously written by :meth:`write_csv`."""
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        rows = list(reader)
    if not rows:
        raise ValueError(f"{path} is empty")
    table = TextTable(headers=rows[0])
    for row in rows[1:]:
        table.add_row(row)
    return table
