"""Shared low-level utilities.

This package holds the small, dependency-free building blocks used across
the reproduction: bit and prefix arithmetic (:mod:`repro.util.bits`),
memory-unit helpers (:mod:`repro.util.units`), markdown/CSV table rendering
(:mod:`repro.util.tables`) and ASCII bar charts (:mod:`repro.util.charts`).
"""

from repro.util.bits import (
    bit_slice,
    bits_needed,
    mask_of,
    prefix_contains,
    prefix_covers_value,
    prefix_mask,
    prefix_range,
    split_value,
)
from repro.util.units import BITS_PER_KBIT, BITS_PER_MBIT, kbits, mbits

__all__ = [
    "BITS_PER_KBIT",
    "BITS_PER_MBIT",
    "bit_slice",
    "bits_needed",
    "kbits",
    "mask_of",
    "mbits",
    "prefix_contains",
    "prefix_covers_value",
    "prefix_mask",
    "prefix_range",
    "split_value",
]
