"""ASCII bar charts.

matplotlib is not available in the offline environment, so the figure
experiments render horizontal bar charts in plain text (alongside CSV data
for external plotting).  Grouped charts reproduce the paper's per-filter
grouped bars (e.g. higher/middle/lower trie series in Fig. 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping, Sequence

_BAR_CHAR = "█"
_DEFAULT_WIDTH = 60


def _scaled(value: float, maximum: float, width: int) -> int:
    if maximum <= 0:
        return 0
    return max(0, round(width * value / maximum))


def bar_chart(
    values: Mapping[str, float],
    title: str = "",
    width: int = _DEFAULT_WIDTH,
    unit: str = "",
) -> str:
    """Render a labelled horizontal bar chart.

    >>> print(bar_chart({"a": 2.0, "b": 1.0}, width=4))
    a | ████ 2
    b | ██ 1
    """
    lines: list[str] = []
    if title:
        lines.append(title)
    if not values:
        return "\n".join(lines + ["(no data)"])
    label_width = max(len(label) for label in values)
    maximum = max(values.values())
    for label, value in values.items():
        bar = _BAR_CHAR * _scaled(value, maximum, width)
        rendered = f"{value:g}{(' ' + unit) if unit else ''}"
        lines.append(f"{label.ljust(label_width)} | {bar} {rendered}")
    return "\n".join(lines)


@dataclass
class GroupedBarChart:
    """A grouped bar chart: one group per category, one bar per series.

    Mirrors the paper's figures, which plot one group of bars per flow
    filter (bbra..yozb) with one bar per trie or per trie level.
    """

    series_names: Sequence[str]
    title: str = ""
    unit: str = ""
    width: int = _DEFAULT_WIDTH
    groups: list[tuple[str, list[float]]] = field(default_factory=list)

    def add_group(self, label: str, values: Sequence[float]) -> None:
        values = list(values)
        if len(values) != len(self.series_names):
            raise ValueError(
                f"group has {len(values)} values, chart has "
                f"{len(self.series_names)} series"
            )
        self.groups.append((label, values))

    def render(self) -> str:
        lines: list[str] = []
        if self.title:
            lines.append(self.title)
        if not self.groups:
            return "\n".join(lines + ["(no data)"])
        maximum = max(
            (value for _, values in self.groups for value in values), default=0.0
        )
        label_width = max(len(name) for name in self.series_names)
        for group_label, values in self.groups:
            lines.append(f"{group_label}:")
            for name, value in zip(self.series_names, values):
                bar = _BAR_CHAR * _scaled(value, maximum, self.width)
                rendered = f"{value:g}{(' ' + self.unit) if self.unit else ''}"
                lines.append(f"  {name.ljust(label_width)} | {bar} {rendered}")
        return "\n".join(lines)
