"""One OpenFlow lookup table implemented by decomposition.

:class:`OpenFlowLookupTable` is a drop-in replacement for the behavioural
:class:`repro.openflow.table.FlowTable`: same ``add`` / ``remove`` /
``lookup`` interface, same highest-priority-match semantics — but backed
by the paper's architecture (parallel per-partition engines, label
aggregation, action table) instead of a linear scan.  Because it is
interface-compatible, the unmodified OpenFlow pipeline runs on top of it,
and every behavioural test of the pipeline doubles as a differential test
of the decomposition.
"""

from __future__ import annotations

import itertools
from collections import Counter
from dataclasses import dataclass
from collections.abc import Callable, Iterator, Mapping, Sequence

from repro.algorithms.base import NO_LABEL
from repro.core.config import ArchitectureConfig, DEFAULT_CONFIG
from repro.core.action_table import ActionTable, ActionTableEntry
from repro.core.field_engine import (
    FieldEngine,
    LutPartitionEngine,
    RangePartitionEngine,
    TriePartitionEngine,
    build_field_engine,
)
from repro.core.index import IndexCalculator
from repro.core.partition import HeaderPartitioner
from repro.openflow.fields import REGISTRY
from repro.openflow.flow import FlowEntry
from repro.openflow.match import FieldMaskSink, Match
from repro.packet.headers import frame_length


@dataclass(frozen=True)
class LookupResult:
    """Outcome of one table lookup, with the labels that produced it."""

    entry: ActionTableEntry | None
    label_sets: tuple[tuple[int, ...], ...]

    @property
    def matched(self) -> bool:
        return self.entry is not None


@dataclass
class _InstalledEntry:
    """Bookkeeping for one installed flow entry (for exact removal)."""

    uid: int
    flow_entry: FlowEntry
    labels: tuple[int, ...]
    action_index: int


class OpenFlowLookupTable:
    """Decomposition-backed OpenFlow flow table (Fig. 1, one table)."""

    def __init__(
        self,
        field_names: tuple[str, ...],
        table_id: int = 0,
        config: ArchitectureConfig = DEFAULT_CONFIG,
    ):
        self.table_id = table_id
        self.config = config
        self.field_names = field_names
        self.partitioner = HeaderPartitioner(field_names, config.part_bits)
        self.engines: dict[str, FieldEngine] = {
            name: build_field_engine(name, config) for name in field_names
        }
        self.index = IndexCalculator(self.partitioner.partition_names)
        self.actions = ActionTable()
        #: Installed entries keyed by a monotonic uid; dicts preserve
        #: insertion order for iteration and give O(1) exact removal
        #: (a list's ``remove`` made bulk deletion quadratic).
        self._installed: dict[int, _InstalledEntry] = {}
        self._uids = itertools.count()
        self._by_key: dict[tuple[Match, int], _InstalledEntry] = {}
        self._label_refs: Counter[tuple[str, int]] = Counter()
        #: Flattened partition engines, aligned with
        #: ``partitioner.partition_names`` (the batch path indexes them
        #: positionally instead of by name).
        self._flat_engines = tuple(
            engine
            for name in field_names
            for engine in self.engines[name].engines
        )
        assert (
            tuple(e.name for e in self._flat_engines)
            == self.partitioner.partition_names
        )
        self.lookup_count = 0
        self.matched_count = 0
        #: Mutation counter; bumped on every add/remove so lookup caches
        #: (e.g. :class:`repro.runtime.cache.MicroflowCache`) can detect
        #: staleness cheaply.
        self.version = 0
        self._snapshot: tuple[FlowEntry, ...] = ()
        self._snapshot_version = -1

    # ------------------------------------------------------------------
    # FlowTable-compatible interface
    # ------------------------------------------------------------------

    def add(self, entry: FlowEntry) -> None:
        """Install a flow entry (replacing any same-match same-priority one)."""
        stray = set(entry.match) - set(self.field_names)
        if stray:
            raise ValueError(
                f"table {self.table_id} cannot match fields {sorted(stray)}; "
                f"schema is {self.field_names}"
            )
        existing = self._find(entry.match, entry.priority)
        if existing is not None:
            self._remove_installed(existing)
        labels: list[int] = []
        for name in self.field_names:
            engine = self.engines[name]
            predicate = entry.match.get(name)
            if predicate is None:
                labels.extend(NO_LABEL for _ in engine.partition_names)
            else:
                labels.extend(engine.insert_rule(predicate))
        action_entry = self.actions.allocate(entry)
        key = tuple(labels)
        self.index.add_rule(
            key,
            action_entry.index,
            entry.priority,
            specificity=entry.match.specificity(),
            # Full ties (priority and specificity) must fall the same way
            # as FlowEntry.sort_key: entry creation order, not the order
            # the rules happened to be installed in.
            sequence=entry._seq,
        )
        installed = _InstalledEntry(
            uid=next(self._uids),
            flow_entry=entry,
            labels=key,
            action_index=action_entry.index,
        )
        self._installed[installed.uid] = installed
        self._by_key[(entry.match, entry.priority)] = installed
        for part_name, label in zip(self.partitioner.partition_names, key):
            if label != NO_LABEL:
                self._label_refs[(part_name, label)] += 1
        self.version += 1

    def remove(self, match: Match, priority: int) -> bool:
        """Delete the entry with the exact match and priority."""
        existing = self._find(match, priority)
        if existing is None:
            return False
        self._remove_installed(existing)
        return True

    def remove_where(self, predicate: Callable[[FlowEntry], bool]) -> int:
        doomed = [
            e for e in self._installed.values() if predicate(e.flow_entry)
        ]
        for installed in doomed:
            self._remove_installed(installed)
        return len(doomed)

    def lookup(
        self, packet_fields: Mapping[str, int], mask=None
    ) -> FlowEntry | None:
        """Highest-priority matching entry, via the decomposition path.

        ``mask``, when given, is a consulted-bits sink (an object with a
        ``consult(field_name, bitmask)`` method, e.g. a
        :class:`~repro.runtime.megaflow.MegaflowRecorder`): every
        partition engine reports which bits of its field the search
        outcome actually depended on, enabling wildcard-cache capture.
        """
        result = self.search(packet_fields, mask=mask)
        if result.entry is None:
            return None
        result.entry.flow_entry.stats.record(frame_length(packet_fields))
        return result.entry.flow_entry

    def __len__(self) -> int:
        return len(self._installed)

    def __iter__(self) -> Iterator[FlowEntry]:
        return iter(e.flow_entry for e in self._installed.values())

    def entries_snapshot(self) -> tuple[FlowEntry, ...]:
        """The entries in deterministic (installation) order, cached per
        :attr:`version` — the ``entry_ref`` coordinate system of the
        sharded stats-return protocol (see
        :meth:`repro.openflow.table.FlowTable.entries_snapshot`).
        """
        if self._snapshot_version != self.version:
            self._snapshot = tuple(self)
            self._snapshot_version = self.version
        return self._snapshot

    @property
    def table_miss_entry(self) -> FlowEntry | None:
        for installed in self._installed.values():
            if installed.flow_entry.is_table_miss:
                return installed.flow_entry
        return None

    # ------------------------------------------------------------------
    # architecture-level interface
    # ------------------------------------------------------------------

    def search(
        self, packet_fields: Mapping[str, int], mask=None
    ) -> LookupResult:
        """Full decomposition lookup, exposing the per-partition labels.

        With a ``mask`` sink the per-partition consulted bits are folded
        into it (see :meth:`lookup`).
        """
        self.lookup_count += 1
        keys = self.partitioner.extract(packet_fields)
        if mask is not None:
            self._accumulate_mask(keys, mask)
        label_sets: list[tuple[int, ...]] = []
        for name in self.field_names:
            label_sets.extend(self.engines[name].search(keys))
        index = self.index.lookup(tuple(label_sets))
        if index is None:
            return LookupResult(entry=None, label_sets=tuple(label_sets))
        self.matched_count += 1
        return LookupResult(entry=self.actions[index], label_sets=tuple(label_sets))

    def consulted_mask(self, packet_fields: Mapping[str, int]) -> dict[str, int]:
        """The consulted-bits masks a :meth:`search` of this packet would
        report, without running the search (no counters, no flow stats).

        Used by caches to backfill masks for entries resolved before any
        mask sink was attached.
        """
        sink = FieldMaskSink()
        self._accumulate_mask(self.partitioner.extract(packet_fields), sink)
        return sink.fields

    def _accumulate_mask(self, keys: Mapping[str, int | None], mask) -> None:
        """Report each partition's consulted bits, field-aligned.

        Partitions are MSB-first slices of their field, so a partition
        mask shifts left by the bits to its right — the same arithmetic
        :meth:`HeaderPartitioner.extract` uses to slice keys out.
        """
        for engine in self._flat_engines:
            part = engine.partition
            part_mask = engine.consulted_mask(keys.get(part.name))
            if part_mask:
                field_bits = REGISTRY[part.field_name].bits
                mask.consult(
                    part.field_name,
                    part_mask << (field_bits - part.offset - part.bits),
                )

    def search_batch(
        self, batch_fields: Sequence[Mapping[str, int]]
    ) -> list[LookupResult]:
        """Decomposition lookup for a batch of packets.

        Field/partition extraction is vectorized
        (:meth:`HeaderPartitioner.extract_batch`) and label searches are
        memoized per batch at two grains: packets sharing a full
        partition-key tuple resolve the index calculation once, and
        packets sharing a single partition key resolve that engine's
        label search once (the positional-key twin of
        :meth:`FieldEngine.search_batch`; keep the two in sync).
        """
        key_rows = self.partitioner.extract_batch(batch_fields)
        self.lookup_count += len(key_rows)
        label_memo: dict[tuple[int, int | None], tuple[int, ...]] = {}
        row_memo: dict[tuple[int | None, ...], LookupResult] = {}
        results: list[LookupResult] = []
        for row in key_rows:
            cached = row_memo.get(row)
            if cached is None:
                label_sets: list[tuple[int, ...]] = []
                for position, key in enumerate(row):
                    memo_key = (position, key)
                    labels = label_memo.get(memo_key)
                    if labels is None:
                        labels = self._flat_engines[position].search(key)
                        label_memo[memo_key] = labels
                    label_sets.append(labels)
                index = self.index.lookup(tuple(label_sets))
                cached = LookupResult(
                    entry=None if index is None else self.actions[index],
                    label_sets=tuple(label_sets),
                )
                row_memo[row] = cached
            if cached.entry is not None:
                self.matched_count += 1
            results.append(cached)
        return results

    def lookup_batch(
        self, batch_fields: Sequence[Mapping[str, int]]
    ) -> list[FlowEntry | None]:
        """Batched :meth:`lookup`: one matched entry (or None) per packet."""
        hits: list[FlowEntry | None] = []
        for fields, result in zip(batch_fields, self.search_batch(batch_fields)):
            if result.entry is None:
                hits.append(None)
            else:
                result.entry.flow_entry.stats.record(frame_length(fields))
                hits.append(result.entry.flow_entry)
        return hits

    def partition_engines(self):
        """Iterate every partition engine (for memory accounting)."""
        for name in self.field_names:
            yield from self.engines[name].structures()

    def tries(self) -> dict[str, TriePartitionEngine]:
        """All trie partition engines, keyed by partition name."""
        return {
            engine.name: engine
            for engine in self.partition_engines()
            if isinstance(engine, TriePartitionEngine)
        }

    def luts(self) -> dict[str, LutPartitionEngine]:
        return {
            engine.name: engine
            for engine in self.partition_engines()
            if isinstance(engine, LutPartitionEngine)
        }

    def range_engines(self) -> dict[str, RangePartitionEngine]:
        return {
            engine.name: engine
            for engine in self.partition_engines()
            if isinstance(engine, RangePartitionEngine)
        }

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _find(self, match: Match, priority: int) -> _InstalledEntry | None:
        return self._by_key.get((match, priority))

    def _remove_installed(self, installed: _InstalledEntry) -> None:
        self.index.remove_rule(installed.labels, installed.action_index)
        self._release_engine_entries(installed)
        del self._installed[installed.uid]
        del self._by_key[(installed.flow_entry.match, installed.flow_entry.priority)]
        # The slot returns to the action table's free list so churn does
        # not grow the array without bound.
        self.actions.release(installed.action_index)
        self.version += 1

    def _release_engine_entries(self, installed: _InstalledEntry) -> None:
        """Drop label references; evict entries no other rule shares."""
        label_cursor = 0
        for name in self.field_names:
            engine = self.engines[name]
            for part_engine in engine.engines:
                label = installed.labels[label_cursor]
                label_cursor += 1
                if label == NO_LABEL:
                    continue
                ref_key = (part_engine.name, label)
                self._label_refs[ref_key] -= 1
                if self._label_refs[ref_key] == 0:
                    del self._label_refs[ref_key]
                    self._evict(part_engine, label)

    @staticmethod
    def _evict(part_engine, label: int) -> None:
        if isinstance(part_engine, TriePartitionEngine):
            value, length = part_engine.allocator.key_of(label)
            part_engine.trie.remove(value, length)
        elif isinstance(part_engine, LutPartitionEngine):
            part_engine.lut.remove(part_engine.allocator.key_of(label))
        elif isinstance(part_engine, RangePartitionEngine):
            low, high = part_engine.allocator.key_of(label)
            part_engine.ranges.remove(low, high)
        # MetadataEngine has no storage to evict.
