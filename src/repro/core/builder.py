"""Assemble lookup tables and architectures from rule sets.

Two composition styles, both from the paper:

- :func:`build_lookup_table` / :func:`build_architecture` — one
  *multi-field* lookup table per application, optionally chained with
  Goto-Table (the general Fig. 1 shape);
- :func:`build_per_field_pipeline` / :func:`build_prototype` — the
  evaluated prototype's shape (Section V.A): each two-field application
  is split into **two** OpenFlow lookup tables, the first matching field
  one and writing its label into the pipeline metadata, the second
  matching (metadata, field two).  The full prototype is then "4 OpenFlow
  Lookup Tables ... two independent multibit trie structures and two
  exact matching LUTs".
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.architecture import MultiTableLookupArchitecture
from repro.core.config import ArchitectureConfig, DEFAULT_CONFIG
from repro.core.lookup_table import OpenFlowLookupTable
from repro.filters.rule import RuleSet
from repro.openflow.actions import OutputAction
from repro.openflow.flow import FlowEntry
from repro.openflow.instructions import (
    GotoTable,
    Instruction,
    WriteActions,
    WriteMetadata,
)
from repro.openflow.match import ExactMatch, Match, WildcardMatch


def build_lookup_table(
    rule_set: RuleSet,
    table_id: int = 0,
    goto_table: int | None = None,
    config: ArchitectureConfig = DEFAULT_CONFIG,
) -> OpenFlowLookupTable:
    """Build one multi-field decomposition table from a rule set."""
    table = OpenFlowLookupTable(
        field_names=tuple(rule_set.field_names), table_id=table_id, config=config
    )
    for entry in rule_set.to_flow_entries(goto_table=goto_table):
        table.add(entry)
    return table


def build_architecture(
    rule_sets: Sequence[RuleSet],
    config: ArchitectureConfig = DEFAULT_CONFIG,
    chain: bool = True,
) -> MultiTableLookupArchitecture:
    """One multi-field table per rule set, chained in order when ``chain``.

    With chaining, every entry of table *i* carries ``Goto-Table i+1``,
    so a packet traverses all applications; the last table's entries
    terminate the pipeline and its action set executes.
    """
    if not rule_sets:
        raise ValueError("need at least one rule set")
    tables = []
    last = len(rule_sets) - 1
    for i, rule_set in enumerate(rule_sets):
        goto = i + 1 if chain and i < last else None
        tables.append(build_lookup_table(rule_set, table_id=i, goto_table=goto, config=config))
    return MultiTableLookupArchitecture(tables, config=config)


def build_per_field_pipeline(
    rule_set: RuleSet,
    first_table_id: int = 0,
    final_goto: int | None = None,
    config: ArchitectureConfig = DEFAULT_CONFIG,
) -> list[OpenFlowLookupTable]:
    """Split a two-field rule set into the prototype's table pair.

    Table A matches the first field and writes the matched value's label
    into metadata before Goto-Table; table B matches (metadata, second
    field) and carries the original rule's action (plus ``final_goto`` if
    the application chains onwards).  A table-miss entry in A forwards
    unmatched packets to B with metadata 0, preserving the semantics of
    rules that wildcard the first field.
    """
    if len(rule_set.field_names) != 2:
        raise ValueError(
            "per-field split needs exactly two fields, got "
            f"{rule_set.field_names}"
        )
    field_a, field_b = rule_set.field_names
    a_id, b_id = first_table_id, first_table_id + 1

    table_a = OpenFlowLookupTable((field_a,), table_id=a_id, config=config)
    table_b = OpenFlowLookupTable(("metadata", field_b), table_id=b_id, config=config)

    # Label the unique first-field predicates (the label method applied at
    # table granularity): one table-A entry per unique value.
    labels: dict[object, int] = {}
    for rule in rule_set:
        predicate = rule.fields.get(field_a)
        if predicate is None or isinstance(predicate, WildcardMatch):
            continue
        if predicate not in labels:
            label = len(labels) + 1
            labels[predicate] = label
            table_a.add(
                FlowEntry.build(
                    match=Match({field_a: predicate}),
                    priority=1,
                    instructions=[WriteMetadata(value=label), GotoTable(b_id)],
                )
            )
    # Table-miss: continue with metadata 0 so wildcard-first-field rules
    # (and clean misses) still consult table B.
    table_a.add(
        FlowEntry.build(
            match=Match({}), priority=0, instructions=[GotoTable(b_id)]
        )
    )

    for rule in rule_set:
        match_fields = {}
        predicate_a = rule.fields.get(field_a)
        if predicate_a is not None and not isinstance(predicate_a, WildcardMatch):
            match_fields["metadata"] = ExactMatch(value=labels[predicate_a], bits=64)
        predicate_b = rule.fields.get(field_b)
        if predicate_b is not None and not isinstance(predicate_b, WildcardMatch):
            match_fields[field_b] = predicate_b
        instructions: list[Instruction] = [
            WriteActions([OutputAction(rule.action_port)])
        ]
        if final_goto is not None:
            instructions.append(GotoTable(final_goto))
        table_b.add(
            FlowEntry.build(
                match=Match(match_fields),
                priority=rule.priority,
                instructions=instructions,
            )
        )
    return [table_a, table_b]


def build_prototype(
    mac_set: RuleSet,
    routing_set: RuleSet,
    config: ArchitectureConfig = DEFAULT_CONFIG,
    chain_applications: bool = True,
) -> MultiTableLookupArchitecture:
    """The evaluated prototype: MAC learning + Routing, four tables.

    Tables 0/1 implement MAC learning (VLAN LUT, then Ethernet MBT);
    tables 2/3 implement Routing (ingress-port LUT, then IPv4 MBT).  With
    ``chain_applications`` the MAC application's final entries Goto-Table
    into the Routing pair, modelling an L2+L3 switch; otherwise the MAC
    action set terminates processing.
    """
    mac_tables = build_per_field_pipeline(
        mac_set,
        first_table_id=0,
        final_goto=2 if chain_applications else None,
        config=config,
    )
    routing_tables = build_per_field_pipeline(
        routing_set, first_table_id=2, final_goto=None, config=config
    )
    return MultiTableLookupArchitecture(mac_tables + routing_tables, config=config)
