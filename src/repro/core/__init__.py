"""The paper's contribution: the multiple-table lookup architecture.

Fig. 1 of the paper, end to end:

1. the **partitioner/selector** splits the packet header into the fields
   (and 16-bit partitions) used by the current table
   (:mod:`repro.core.partition`);
2. each partition is searched by its own single-field algorithm — hash
   LUT for EM fields, a 3-level multi-bit trie per 16-bit partition for
   LPM fields, an elementary-interval structure for RM fields — yielding
   **labels** (:mod:`repro.core.field_engine`);
3. the **index calculation** combines the per-partition labels through
   DCFL-style aggregation tables into the index of the matching rule
   (:mod:`repro.core.index`);
4. the **action table** holds the rule's OpenFlow instructions —
   Write-Actions and Goto-Table, or "send to controller" on a miss
   (:mod:`repro.core.action_table`);
5. :class:`repro.core.architecture.MultiTableLookupArchitecture` chains
   lookup tables into the OpenFlow v1.1+ multiple-table pipeline, and
   :mod:`repro.core.builder` assembles the whole thing from rule sets —
   either one multi-field table per application or the paper's
   per-field table split with metadata chaining.
"""

from repro.core.action_table import ActionTable, ActionTableEntry
from repro.core.architecture import (
    ArchitectureResult,
    MultiTableLookupArchitecture,
)
from repro.core.builder import (
    build_architecture,
    build_lookup_table,
    build_per_field_pipeline,
)
from repro.core.config import ArchitectureConfig
from repro.core.field_engine import (
    FieldEngine,
    MetadataEngine,
    PartitionEngine,
    build_field_engine,
)
from repro.core.index import IndexCalculator
from repro.core.lookup_table import LookupResult, OpenFlowLookupTable
from repro.core.partition import HeaderPartitioner

__all__ = [
    "ActionTable",
    "ActionTableEntry",
    "ArchitectureConfig",
    "ArchitectureResult",
    "FieldEngine",
    "HeaderPartitioner",
    "IndexCalculator",
    "LookupResult",
    "MetadataEngine",
    "MultiTableLookupArchitecture",
    "OpenFlowLookupTable",
    "PartitionEngine",
    "build_architecture",
    "build_field_engine",
    "build_lookup_table",
    "build_per_field_pipeline",
]
