"""Packet-header partitioner/selector (Fig. 1, first stage).

"For the lookup process, the packet header is split into the selected
fields used for the first table lookup.  Each field partition is sent to
the corresponding single-field algorithm." — paper Section IV.A.

Given a table's field schema, the partitioner extracts each field from a
packet's field dictionary and slices LPM fields into their 16-bit
partition values, producing the per-partition keys the engines search.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.filters.partitions import FieldPartition, partition_scheme
from repro.openflow.fields import REGISTRY, MatchMethod


class HeaderPartitioner:
    """Extracts per-partition key values for a fixed field schema."""

    def __init__(self, field_names: tuple[str, ...], part_bits: int = 16):
        self.field_names = field_names
        self.part_bits = part_bits
        self._schemes: dict[str, tuple[FieldPartition, ...]] = {}
        for name in field_names:
            definition = REGISTRY[name]
            if definition.method is MatchMethod.PREFIX:
                self._schemes[name] = partition_scheme(
                    name, definition.bits, part_bits
                )
            else:
                self._schemes[name] = partition_scheme(name, definition.bits, definition.bits)

    @property
    def partition_names(self) -> tuple[str, ...]:
        """All partition names, in schema order."""
        return tuple(
            part.name for name in self.field_names for part in self._schemes[name]
        )

    def scheme(self, field_name: str) -> tuple[FieldPartition, ...]:
        return self._schemes[field_name]

    def extract(self, packet_fields: Mapping[str, int]) -> dict[str, int | None]:
        """Slice a packet's fields into partition keys.

        Returns a mapping from partition name to the partition's key
        value, or ``None`` when the packet lacks the field entirely (e.g.
        ``ipv4_dst`` on a non-IP packet) — engines treat that as "no
        match".
        """
        keys: dict[str, int | None] = {}
        for name in self.field_names:
            value = packet_fields.get(name)
            for part in self._schemes[name]:
                if value is None:
                    keys[part.name] = None
                else:
                    field_bits = REGISTRY[name].bits
                    shift = field_bits - part.offset - part.bits
                    keys[part.name] = (value >> shift) & ((1 << part.bits) - 1)
        return keys

    def extract_batch(
        self, batch: Sequence[Mapping[str, int]]
    ) -> list[tuple[int | None, ...]]:
        """Slice a batch of packets into partition-key tuples.

        Returns one tuple per packet, with keys in
        :attr:`partition_names` order (``None`` where the packet lacks
        the field).  The per-partition shift/mask arithmetic runs
        vectorized over the whole batch with numpy for fields up to 64
        bits; wider fields (IPv6) fall back to Python integers, which
        have no width limit.
        """
        if not batch:
            return []
        columns: list[list[int | None]] = []
        for name in self.field_names:
            field_bits = REGISTRY[name].bits
            raw = [fields.get(name) for fields in batch]
            values: np.ndarray | None = None
            if field_bits <= 64:
                try:
                    values = np.array(
                        [0 if v is None else v for v in raw], dtype=np.uint64
                    )
                except (OverflowError, TypeError):
                    values = None  # out-of-range value; take the slow path
            for part in self._schemes[name]:
                shift = field_bits - part.offset - part.bits
                mask = (1 << part.bits) - 1
                if values is not None:
                    keys = (
                        (values >> np.uint64(shift)) & np.uint64(mask)
                    ).tolist()
                    columns.append(
                        [
                            None if v is None else key
                            for v, key in zip(raw, keys)
                        ]
                    )
                else:
                    columns.append(
                        [
                            None if v is None else (v >> shift) & mask
                            for v in raw
                        ]
                    )
        return list(zip(*columns))
