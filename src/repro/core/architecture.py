"""The multiple-table lookup architecture (Fig. 1 as a whole).

The architecture is an OpenFlow pipeline whose tables are decomposition
lookup tables.  Because :class:`~repro.core.lookup_table.OpenFlowLookupTable`
is interface-compatible with the behavioural
:class:`~repro.openflow.table.FlowTable`, the pipeline semantics
(action-set accumulation, metadata, forward-only Goto-Table, miss to
controller) are *inherited* from :class:`repro.openflow.pipeline.OpenFlowPipeline`
rather than re-implemented — the two execution paths differ only in how
a table finds its matching entry, which is exactly the property the
differential tests rely on.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.core.config import ArchitectureConfig, DEFAULT_CONFIG
from repro.core.lookup_table import OpenFlowLookupTable
from repro.openflow.pipeline import MissPolicy, OpenFlowPipeline, PipelineResult

#: The architecture's result type is the pipeline's — one packet's fate.
ArchitectureResult = PipelineResult


class MultiTableLookupArchitecture(OpenFlowPipeline):
    """An OpenFlow pipeline over decomposition lookup tables."""

    def __init__(
        self,
        tables: Sequence[OpenFlowLookupTable],
        config: ArchitectureConfig = DEFAULT_CONFIG,
    ):
        if not tables:
            raise ValueError("architecture needs at least one lookup table")
        miss_policy = (
            MissPolicy.SEND_TO_CONTROLLER
            if config.send_miss_to_controller
            else MissPolicy.DROP
        )
        super().__init__(tables=list(tables), miss_policy=miss_policy)
        self.config = config

    @property
    def lookup_tables(self) -> list[OpenFlowLookupTable]:
        tables = self.tables
        assert all(isinstance(t, OpenFlowLookupTable) for t in tables)
        return tables  # type: ignore[return-value]

    def classify(self, packet_fields: Mapping[str, int]) -> ArchitectureResult:
        """Alias of :meth:`process` with the paper's terminology."""
        return self.process(packet_fields)

    def total_entries(self) -> int:
        """Installed flow entries across all tables."""
        return sum(len(table) for table in self.lookup_tables)

    def describe(self) -> str:
        lines = [f"MultiTableLookupArchitecture ({len(self.tables)} tables)"]
        for table in self.lookup_tables:
            engines = ", ".join(
                f"{e.name}:{e.kind}" for e in table.partition_engines()
            )
            lines.append(
                f"  table {table.table_id}: {len(table)} entries; "
                f"engines [{engines}]; "
                f"index {len(table.index)} tuples; "
                f"actions {len(table.actions)}"
            )
        return "\n".join(lines)
