"""Index calculation (Fig. 1, "Index Calculation" stage).

"The result from each algorithm search is a label, which is used to
obtain the final index to address the action tables." — Section IV.C.

Rules are reduced to tuples of per-partition labels (label 0 = the
partition is wildcarded).  A packet's search produces per-partition label
*sets* (every matching entry, e.g. all covering prefixes).  The index
calculation finds the best-priority rule tuple inside the product of
those sets — without materialising the product, using DCFL-style
progressive aggregation: prefix-of-tuple tables prune impossible
combinations partition by partition, so the candidate set stays no larger
than the number of rules that could actually match.

All tables maintain reference counts, so rule removal is exact — the
incremental-update capability the paper's update evaluation relies on.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterator
from dataclasses import dataclass

from repro.algorithms.base import NO_LABEL
from repro.util.bits import bits_needed

LabelTuple = tuple[int, ...]


@dataclass
class _RuleRef:
    """One rule's claim on a label tuple.

    Every rule that maps to a tuple is kept (not just the best), so
    removing the currently-visible rule of a shadowed pair restores the
    survivor instead of leaving a stale action index behind.
    """

    priority: int
    specificity: int  # constrained bits; breaks priority ties
    sequence: int  # caller-supplied tiebreak (lower wins; see add_rule)
    action_index: int

    @property
    def rank(self) -> tuple[int, int, int]:
        """Sort key mirroring :attr:`FlowEntry.sort_key` (higher wins)."""
        return (self.priority, self.specificity, -self.sequence)


class IndexCalculator:
    """Label-tuple -> action-index aggregation network."""

    def __init__(self, partition_names: tuple[str, ...]):
        if not partition_names:
            raise ValueError("index calculation needs at least one partition")
        self.partition_names = partition_names
        self._depth = len(partition_names)
        #: aggregation tables: counts of truncated label tuples, one per
        #: prefix length 1..depth (the last doubles as the key domain).
        self._prefix_counts: list[Counter[LabelTuple]] = [
            Counter() for _ in range(self._depth)
        ]
        self._entries: dict[LabelTuple, list[_RuleRef]] = {}
        self._sequence = 0

    # ------------------------------------------------------------------
    # build / update
    # ------------------------------------------------------------------

    def add_rule(
        self,
        labels: LabelTuple,
        action_index: int,
        priority: int,
        specificity: int = 0,
        sequence: int | None = None,
    ) -> None:
        """Register a rule's label tuple.

        Identical label tuples denote identical match regions, so only the
        best-ranked rule of a tuple is addressable at lookup time; shadowed
        duplicates are retained so that removing the visible rule restores
        them.  ``specificity`` (constrained bits of the source match)
        breaks priority ties the same way the behavioural flow table does.

        ``sequence`` is the final tiebreak (lower wins).  Callers holding
        a :class:`FlowEntry` must pass its creation sequence: the
        behavioural table breaks full ties by entry *creation* order, and
        rules can be installed in a different order than they were built,
        so an index-local insertion counter (the fallback) would resolve
        those ties differently than the table it must mirror.
        """
        self._check_tuple(labels)
        for k in range(self._depth):
            self._prefix_counts[k][labels[: k + 1]] += 1
        self._sequence += 1
        self._entries.setdefault(labels, []).append(
            _RuleRef(
                priority=priority,
                specificity=specificity,
                sequence=self._sequence if sequence is None else sequence,
                action_index=action_index,
            )
        )

    def remove_rule(
        self, labels: LabelTuple, action_index: int | None = None
    ) -> bool:
        """Drop one rule reference from a tuple; True if it existed.

        With ``action_index`` the reference pointing at that action slot
        is removed (exact removal, the lookup-table path); without it the
        most recently added reference is dropped.
        """
        refs = self._entries.get(labels)
        if refs is None:
            return False
        if action_index is None:
            victim = max(refs, key=lambda ref: ref.sequence)
        else:
            matching = [ref for ref in refs if ref.action_index == action_index]
            if not matching:
                return False
            victim = max(matching, key=lambda ref: ref.sequence)
        refs.remove(victim)
        if not refs:
            del self._entries[labels]
        for k in range(self._depth):
            key = labels[: k + 1]
            self._prefix_counts[k][key] -= 1
            if self._prefix_counts[k][key] == 0:
                del self._prefix_counts[k][key]
        return True

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------

    def lookup(self, label_sets: tuple[tuple[int, ...], ...]) -> int | None:
        """Best action index over the product of per-partition label sets.

        Each partition's candidates are its matched labels plus the
        wildcard label 0; aggregation tables prune the product early.
        """
        if len(label_sets) != self._depth:
            raise ValueError(
                f"expected {self._depth} label sets, got {len(label_sets)}"
            )
        candidates: list[LabelTuple] = [()]
        for k, labels in enumerate(label_sets):
            options = tuple(labels) + (NO_LABEL,)
            table = self._prefix_counts[k]
            candidates = [
                extended
                for stem in candidates
                for label in options
                if (extended := stem + (label,)) in table
            ]
            if not candidates:
                return None
        best: _RuleRef | None = None
        for key in candidates:
            for ref in self._entries[key]:
                if best is None or ref.rank > best.rank:
                    best = ref
        assert best is not None
        return best.action_index

    def lookup_naive(self, label_sets: tuple[tuple[int, ...], ...]) -> int | None:
        """Reference implementation: full cartesian product, no pruning.

        Exists for differential testing of the aggregation network.
        """
        import itertools

        options = [tuple(labels) + (NO_LABEL,) for labels in label_sets]
        best: _RuleRef | None = None
        for key in itertools.product(*options):
            for ref in self._entries.get(key, ()):
                if best is None or ref.rank > best.rank:
                    best = ref
        return best.action_index if best is not None else None

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        """Number of distinct addressable label tuples."""
        return len(self._entries)

    def aggregation_sizes(self) -> list[int]:
        """Entry counts of each aggregation stage (1..depth partitions)."""
        return [len(counter) for counter in self._prefix_counts]

    def prefix_tuples(self, stage: int) -> tuple[LabelTuple, ...]:
        """Stored truncated tuples of aggregation stage ``stage`` (0-based,
        tuples of length ``stage + 1``) — the pruning domain the shared
        read-only state serialises (:mod:`repro.runtime.rulestate`)."""
        return tuple(self._prefix_counts[stage])

    def best_refs(self) -> Iterator[tuple[LabelTuple, tuple[int, int, int, int]]]:
        """Per label tuple, the visible (best-ranked) rule's
        ``(priority, specificity, sequence, action_index)``.

        Shadowed duplicates stay internal: only the best of each tuple is
        addressable at lookup time, so a sealed snapshot needs nothing
        else (:mod:`repro.runtime.rulestate`).
        """
        for labels, refs in self._entries.items():
            best = max(refs, key=lambda ref: ref.rank)
            yield labels, (
                best.priority,
                best.specificity,
                best.sequence,
                best.action_index,
            )

    def key_bits(self, label_bits: tuple[int, ...] | None = None) -> int:
        """Width of a full label tuple key.

        Defaults to sizing each partition's label field from the largest
        label observed in the stored tuples.
        """
        if label_bits is None:
            label_bits = self.observed_label_bits()
        return sum(label_bits)

    def observed_label_bits(self) -> tuple[int, ...]:
        """Per-partition label widths implied by the stored tuples."""
        maxima = [0] * self._depth
        for key in self._entries:
            for i, label in enumerate(key):
                maxima[i] = max(maxima[i], label)
        return tuple(bits_needed(m + 1) for m in maxima)

    def _check_tuple(self, labels: LabelTuple) -> None:
        if len(labels) != self._depth:
            raise ValueError(
                f"label tuple {labels} has {len(labels)} parts, "
                f"table has {self._depth} partitions"
            )
        if any(label < 0 for label in labels):
            raise ValueError(f"negative label in {labels}")
