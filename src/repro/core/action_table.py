"""Action tables (Fig. 1, final stage).

The index produced by the index calculation addresses an action table
whose entries carry the matched flow entry's OpenFlow instructions — in
the paper's prototype, a Write-Actions (e.g. output port) and optionally
a Goto-Table; a miss yields "send to controller" at the architecture
level instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.openflow.flow import FlowEntry
from repro.openflow.instructions import GotoTable
from repro.util.bits import bits_needed

#: Encoded width of one action-table entry, following the prototype's
#: instruction repertoire: a 32-bit output port, an 8-bit next-table id,
#: and 2 flag bits (goto-valid, output-valid).
OUTPUT_PORT_BITS = 32
NEXT_TABLE_BITS = 8
FLAG_BITS = 2


@dataclass(frozen=True)
class ActionTableEntry:
    """One addressable action entry.

    Wraps the source :class:`FlowEntry` so executing the entry reuses the
    OpenFlow instruction machinery unchanged.
    """

    index: int
    flow_entry: FlowEntry

    @property
    def priority(self) -> int:
        return self.flow_entry.priority

    @property
    def goto_table(self) -> int | None:
        goto = self.flow_entry.instructions.goto_table
        return goto.table_id if goto is not None else None

    def describe(self) -> str:
        return f"[{self.index}] {self.flow_entry.instructions.describe()}"


class ActionTable:
    """An append-only array of action entries addressed by index."""

    def __init__(self) -> None:
        self._entries: list[ActionTableEntry] = []

    def append(self, flow_entry: FlowEntry) -> ActionTableEntry:
        entry = ActionTableEntry(index=len(self._entries), flow_entry=flow_entry)
        self._entries.append(entry)
        return entry

    def __getitem__(self, index: int) -> ActionTableEntry:
        return self._entries[index]

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[ActionTableEntry]:
        return iter(self._entries)

    @property
    def index_bits(self) -> int:
        """Bits needed to address any entry."""
        return bits_needed(len(self._entries))

    @property
    def entry_bits(self) -> int:
        """Encoded width of one entry under the prototype's repertoire."""
        return OUTPUT_PORT_BITS + NEXT_TABLE_BITS + FLAG_BITS

    @property
    def total_bits(self) -> int:
        return len(self._entries) * self.entry_bits

    def goto_targets(self) -> set[int]:
        """All next-table ids referenced by entries (pipeline validation)."""
        targets = set()
        for entry in self._entries:
            goto = entry.flow_entry.instructions.get(GotoTable)
            if goto is not None:
                assert isinstance(goto, GotoTable)
                targets.add(goto.table_id)
        return targets
