"""Action tables (Fig. 1, final stage).

The index produced by the index calculation addresses an action table
whose entries carry the matched flow entry's OpenFlow instructions — in
the paper's prototype, a Write-Actions (e.g. output port) and optionally
a Goto-Table; a miss yields "send to controller" at the architecture
level instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator

from repro.openflow.flow import FlowEntry
from repro.openflow.instructions import GotoTable
from repro.util.bits import bits_needed

#: Encoded width of one action-table entry, following the prototype's
#: instruction repertoire: a 32-bit output port, an 8-bit next-table id,
#: and 2 flag bits (goto-valid, output-valid).
OUTPUT_PORT_BITS = 32
NEXT_TABLE_BITS = 8
FLAG_BITS = 2


@dataclass(frozen=True)
class ActionTableEntry:
    """One addressable action entry.

    Wraps the source :class:`FlowEntry` so executing the entry reuses the
    OpenFlow instruction machinery unchanged.
    """

    index: int
    flow_entry: FlowEntry

    @property
    def priority(self) -> int:
        return self.flow_entry.priority

    @property
    def goto_table(self) -> int | None:
        goto = self.flow_entry.instructions.goto_table
        return goto.table_id if goto is not None else None

    def describe(self) -> str:
        return f"[{self.index}] {self.flow_entry.instructions.describe()}"


class ActionTable:
    """An array of action entries addressed by index, with slot reuse.

    The array only ever grows when no freed slot is available: releasing
    an entry (rule removal / flow-mod replacement) pushes its index onto a
    free list, and the next allocation reuses it.  Without this, every
    same-match replacement would strand a slot forever and the table would
    grow without bound under churn, skewing the memory cost model.
    """

    def __init__(self) -> None:
        self._slots: list[ActionTableEntry | None] = []
        self._free: list[int] = []
        self._free_high_water = 0

    def allocate(self, flow_entry: FlowEntry) -> ActionTableEntry:
        """Place an entry in a freed slot, growing the array only if full."""
        if self._free:
            index = self._free.pop()
            entry = ActionTableEntry(index=index, flow_entry=flow_entry)
            self._slots[index] = entry
        else:
            entry = ActionTableEntry(index=len(self._slots), flow_entry=flow_entry)
            self._slots.append(entry)
        return entry

    def append(self, flow_entry: FlowEntry) -> ActionTableEntry:
        """Backwards-compatible alias of :meth:`allocate`."""
        return self.allocate(flow_entry)

    def release(self, index: int) -> None:
        """Free one slot for reuse by a later allocation."""
        if self._slots[index] is None:
            raise IndexError(f"action slot {index} is already free")
        self._slots[index] = None
        self._free.append(index)
        if len(self._free) > self._free_high_water:
            self._free_high_water = len(self._free)

    def __getitem__(self, index: int) -> ActionTableEntry:
        entry = self._slots[index]
        if entry is None:
            raise IndexError(f"action slot {index} is free")
        return entry

    def __len__(self) -> int:
        """Number of live entries (allocated slots minus free slots)."""
        return len(self._slots) - len(self._free)

    def __iter__(self) -> Iterator[ActionTableEntry]:
        return iter(e for e in self._slots if e is not None)

    @property
    def allocated_slots(self) -> int:
        """High-water slot count — the memory the hardware array occupies."""
        return len(self._slots)

    @property
    def free_slots(self) -> int:
        """Slots currently on the free list (allocated but unused)."""
        return len(self._free)

    @property
    def free_high_water(self) -> int:
        """Peak free-list depth over the table's lifetime.

        Under long churn this is the compaction headroom: the hardware
        array must have held this many simultaneously-dead slots at some
        point even if later allocations re-filled them.
        """
        return self._free_high_water

    @property
    def index_bits(self) -> int:
        """Bits needed to address any allocated slot."""
        return bits_needed(len(self._slots))

    @property
    def entry_bits(self) -> int:
        """Encoded width of one entry under the prototype's repertoire."""
        return OUTPUT_PORT_BITS + NEXT_TABLE_BITS + FLAG_BITS

    @property
    def total_bits(self) -> int:
        """Memory of the whole array, free slots included."""
        return len(self._slots) * self.entry_bits

    @property
    def live_bits(self) -> int:
        """Memory attributable to live entries only."""
        return len(self) * self.entry_bits

    def goto_targets(self) -> set[int]:
        """All next-table ids referenced by entries (pipeline validation)."""
        targets = set()
        for entry in self:
            goto = entry.flow_entry.instructions.get(GotoTable)
            if goto is not None:
                assert isinstance(goto, GotoTable)
                targets.add(goto.table_id)
        return targets
