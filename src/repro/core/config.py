"""Architecture configuration."""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.multibit_trie import DEFAULT_STRIDES


@dataclass(frozen=True)
class ArchitectureConfig:
    """Build-time knobs of the multiple-table lookup architecture.

    Attributes:
        part_bits: partition width for LPM fields (the paper fixes 16).
        strides: multi-bit trie stride distribution; must sum to
            ``part_bits``.  The default 3-level (5, 5, 6) reproduces the
            paper's pipeline depth and its L1 worst case of 32 records.
        lut_occupancy: hash-LUT load factor used for slot provisioning.
        send_miss_to_controller: table-miss behaviour (paper: "Send to
            controller").
    """

    part_bits: int = 16
    strides: tuple[int, ...] = DEFAULT_STRIDES
    lut_occupancy: float = 0.75
    send_miss_to_controller: bool = True

    def __post_init__(self) -> None:
        if sum(self.strides) != self.part_bits:
            raise ValueError(
                f"strides {self.strides} must sum to part_bits={self.part_bits}"
            )
        if not 0.0 < self.lut_occupancy <= 1.0:
            raise ValueError(f"lut_occupancy {self.lut_occupancy} outside (0, 1]")


#: Default configuration used across experiments.
DEFAULT_CONFIG = ArchitectureConfig()
