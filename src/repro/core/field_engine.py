"""Per-field search engines (Fig. 1, "Algorithm Set" stage).

A :class:`FieldEngine` owns the search structures for one match field:

- EM fields -> one hash :class:`~repro.algorithms.exact_lut.ExactMatchLut`;
- LPM fields -> one :class:`~repro.algorithms.multibit_trie.MultibitTrie`
  per 16-bit partition (3 tries for Ethernet addresses, 2 for IPv4);
- RM fields -> one :class:`~repro.algorithms.range_lookup.RangeLookup`;
- the pipeline ``metadata`` register -> a zero-storage identity engine,
  because metadata values *are already labels* written by an earlier
  table of the pipeline.

Every structure pairs with a :class:`~repro.algorithms.labels.LabelAllocator`
implementing the label method: rule predicates insert *unique* entries
only, and both rules and packets are reduced to per-partition labels.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping, Sequence

from repro.algorithms.base import NO_LABEL
from repro.algorithms.exact_lut import ExactMatchLut
from repro.algorithms.labels import LabelAllocator
from repro.algorithms.multibit_trie import MultibitTrie
from repro.algorithms.range_lookup import RangeLookup
from repro.core.config import ArchitectureConfig, DEFAULT_CONFIG
from repro.filters.partitions import (
    FieldPartition,
    partition_entries,
    partition_scheme,
)
from repro.openflow.fields import REGISTRY, MatchMethod
from repro.openflow.match import (
    ExactMatch,
    FieldMatch,
    PrefixMatch,
    RangeMatch,
    WildcardMatch,
)
from repro.util.bits import mask_of, prefix_mask


class PartitionEngine:
    """One partition's search structure plus its label allocator."""

    kind: str = "abstract"

    def __init__(self, partition: FieldPartition):
        self.partition = partition
        self.allocator: LabelAllocator = LabelAllocator()

    @property
    def name(self) -> str:
        return self.partition.name

    def rule_label(self, predicate: FieldMatch) -> int:
        """Insert the predicate's entry for this partition; return its label
        (NO_LABEL when the predicate leaves the partition wild)."""
        raise NotImplementedError

    def search(self, key: int | None) -> tuple[int, ...]:
        """All labels matching the partition key (empty on miss/absence)."""
        raise NotImplementedError

    def consulted_mask(self, key: int | None) -> int:
        """Bitmask over the partition's bits that :meth:`search` consulted.

        The soundness contract for wildcard (megaflow) caching: two keys
        agreeing on every masked bit — including both lacking the field,
        which a ``None`` key encodes — produce identical label sets.  An
        engine with no stored entries consults nothing; a populated
        exact/range structure consults the whole partition; tries consult
        only down to the level their walk terminates at.
        """
        if self._storage_empty():
            return 0
        return mask_of(self.partition.bits)

    def _storage_empty(self) -> bool:
        """True when search outcomes cannot depend on the key."""
        raise NotImplementedError

    def entry_count(self) -> int:
        return len(self.allocator)


class LutPartitionEngine(PartitionEngine):
    """Exact-match partition served by a hash LUT."""

    kind = "lut"

    def __init__(self, partition: FieldPartition, occupancy: float):
        super().__init__(partition)
        self.lut = ExactMatchLut(key_bits=partition.bits, occupancy=occupancy)

    def rule_label(self, predicate: FieldMatch) -> int:
        if isinstance(predicate, WildcardMatch):
            return NO_LABEL
        if isinstance(predicate, ExactMatch):
            value = predicate.value
        elif isinstance(predicate, PrefixMatch) and predicate.length == predicate.bits:
            value = predicate.value
        else:
            raise TypeError(
                f"partition {self.name} is exact-match; got "
                f"{type(predicate).__name__}"
            )
        label = self.allocator.label_for(value)
        self.lut.insert(value, label)
        return label

    def search(self, key: int | None) -> tuple[int, ...]:
        if key is None:
            return ()
        return self.lut.lookup_all(key)

    def _storage_empty(self) -> bool:
        return len(self.lut) == 0


class TriePartitionEngine(PartitionEngine):
    """LPM partition served by a multi-bit trie."""

    kind = "trie"

    def __init__(self, partition: FieldPartition, strides: tuple[int, ...]):
        super().__init__(partition)
        self.trie = MultibitTrie(key_bits=partition.bits, strides=strides)

    def insert_entry(self, entry: tuple[int, int]) -> int:
        """Insert one canonical (value, length) partition entry."""
        label = self.allocator.label_for(entry)
        self.trie.insert(entry[0], entry[1], label)
        return label

    def rule_label(self, predicate: FieldMatch) -> int:
        raise NotImplementedError(
            "trie partitions are fed per-partition entries by FieldEngine"
        )

    def search(self, key: int | None) -> tuple[int, ...]:
        if key is None:
            return ()
        return self.trie.lookup_all(key)

    def _storage_empty(self) -> bool:
        return len(self.trie) == 0

    def consulted_mask(self, key: int | None) -> int:
        if self._storage_empty():
            return 0
        if key is None:
            return mask_of(self.partition.bits)
        return prefix_mask(self.trie.consulted_bits(key), self.partition.bits)


class RangePartitionEngine(PartitionEngine):
    """RM partition served by the elementary-interval structure."""

    kind = "range"

    def __init__(self, partition: FieldPartition):
        super().__init__(partition)
        self.ranges = RangeLookup(key_bits=partition.bits)

    def rule_label(self, predicate: FieldMatch) -> int:
        if isinstance(predicate, WildcardMatch):
            return NO_LABEL
        if isinstance(predicate, RangeMatch):
            if predicate.is_full:
                return NO_LABEL
            low, high = predicate.low, predicate.high
        elif isinstance(predicate, ExactMatch):
            low = high = predicate.value
        else:
            raise TypeError(
                f"partition {self.name} is range-match; got "
                f"{type(predicate).__name__}"
            )
        label = self.allocator.label_for((low, high))
        self.ranges.insert(low, high, label)
        return label

    def search(self, key: int | None) -> tuple[int, ...]:
        if key is None:
            return ()
        return self.ranges.lookup_all(key)

    def _storage_empty(self) -> bool:
        return len(self.ranges) == 0


class MetadataEngine(PartitionEngine):
    """Identity engine for the pipeline metadata register.

    Metadata carries a label written by an earlier table (the paper's
    Section III.A: "the system uses the metadata internally to pass
    information between lookup tables"), so no search structure — and no
    memory — is needed: the value *is* the label.
    """

    kind = "metadata"

    def rule_label(self, predicate: FieldMatch) -> int:
        if isinstance(predicate, WildcardMatch):
            return NO_LABEL
        if not isinstance(predicate, ExactMatch):
            raise TypeError("metadata predicates must be exact labels")
        if predicate.value < 1:
            raise ValueError(
                "metadata rules must carry labels >= 1 (0 is the wildcard)"
            )
        return predicate.value

    def search(self, key: int | None) -> tuple[int, ...]:
        if key is None or key == NO_LABEL:
            return ()
        return (key,)

    def _storage_empty(self) -> bool:
        # The value *is* the label; whether it matters is decided by the
        # index calculation, which this engine cannot see — stay
        # conservative and always claim the whole register.
        return False


class FieldEngine:
    """All partition engines of one match field, in MSB-first order."""

    def __init__(self, field_name: str, engines: tuple[PartitionEngine, ...]):
        self.field_name = field_name
        self.engines = engines

    @property
    def partition_names(self) -> tuple[str, ...]:
        return tuple(engine.name for engine in self.engines)

    def insert_rule(self, predicate: FieldMatch) -> tuple[int, ...]:
        """Insert one rule's predicate; return its per-partition labels."""
        first = self.engines[0]
        if isinstance(first, TriePartitionEngine):
            scheme = tuple(engine.partition for engine in self.engines)
            labels = []
            for engine, entry in zip(
                self.engines, partition_entries(predicate, scheme)
            ):
                assert isinstance(engine, TriePartitionEngine)
                labels.append(
                    NO_LABEL if entry is None else engine.insert_entry(entry)
                )
            return tuple(labels)
        return tuple(engine.rule_label(predicate) for engine in self.engines)

    def search(
        self, partition_keys: Mapping[str, int | None]
    ) -> tuple[tuple[int, ...], ...]:
        """Per-partition matching label sets for one packet."""
        return tuple(
            engine.search(partition_keys.get(engine.name)) for engine in self.engines
        )

    def search_batch(
        self,
        keys_batch: Sequence[Mapping[str, int | None]],
        memo: dict[tuple[str, int | None], tuple[int, ...]] | None = None,
    ) -> list[tuple[tuple[int, ...], ...]]:
        """Per-packet label sets for a batch of partition-key mappings.

        Each unique ``(partition, key)`` pair is resolved against its
        search structure once per batch; duplicate keys — the common case
        in skewed traffic — reuse the memoized labels.  Pass a shared
        ``memo`` to extend the memoization across several fields' engines.

        ``OpenFlowLookupTable.search_batch`` implements the same
        memoization inline over its flattened engine list (positional
        keys, plus a whole-tuple memo layer); keep the two in sync.
        """
        if memo is None:
            memo = {}
        out: list[tuple[tuple[int, ...], ...]] = []
        for keys in keys_batch:
            sets: list[tuple[int, ...]] = []
            for engine in self.engines:
                key = keys.get(engine.name)
                memo_key = (engine.name, key)
                labels = memo.get(memo_key)
                if labels is None:
                    labels = engine.search(key)
                    memo[memo_key] = labels
                sets.append(labels)
            out.append(tuple(sets))
        return out

    def structures(self) -> Iterator[PartitionEngine]:
        return iter(self.engines)


def build_field_engine(
    field_name: str, config: ArchitectureConfig = DEFAULT_CONFIG
) -> FieldEngine:
    """Create the appropriate engine stack for a field, by match method."""
    definition = REGISTRY[field_name]
    if field_name == "metadata":
        scheme = partition_scheme(field_name, definition.bits, definition.bits)
        return FieldEngine(field_name, (MetadataEngine(scheme[0]),))
    if definition.method is MatchMethod.PREFIX:
        scheme = partition_scheme(field_name, definition.bits, config.part_bits)
        return FieldEngine(
            field_name,
            tuple(
                TriePartitionEngine(part, config.strides) for part in scheme
            ),
        )
    if definition.method is MatchMethod.EXACT:
        scheme = partition_scheme(field_name, definition.bits, definition.bits)
        return FieldEngine(
            field_name,
            (LutPartitionEngine(scheme[0], config.lut_occupancy),),
        )
    scheme = partition_scheme(field_name, definition.bits, definition.bits)
    return FieldEngine(field_name, (RangePartitionEngine(scheme[0]),))
