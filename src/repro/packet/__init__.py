"""Packet substrate: typed headers, wire codecs and trace generation.

The lookup architecture classifies packets by their extracted header
fields.  This package provides:

- :mod:`repro.packet.headers` — immutable header dataclasses (Ethernet,
  802.1Q, MPLS, IPv4, IPv6, TCP, UDP, ICMP) that each know how to
  contribute OpenFlow match fields;
- :mod:`repro.packet.packet` — :class:`Packet`, a header stack plus switch
  context (ingress port) with :meth:`Packet.match_fields`;
- :mod:`repro.packet.parser` / :mod:`repro.packet.builder` — real
  byte-level wire-format codecs (parse/serialise round-trip);
- :mod:`repro.packet.generator` — deterministic packet-trace generation,
  including traces derived from rule sets so benchmarks can control hit
  rates;
- :mod:`repro.packet.batch` — :class:`PacketBatch`, the columnar batch
  container (uint64 lanes + presence bytes, shared rows under a ``pick``
  indirection) the runtime's vectorized cache tiers and decode-free
  shard workers operate on.
"""

from repro.packet.batch import PacketBatch, packed_masked_key
from repro.packet.headers import (
    Ethernet,
    Header,
    Icmp,
    IPv4,
    IPv6,
    Mpls,
    Tcp,
    Udp,
    Vlan,
)
from repro.packet.packet import Packet
from repro.packet.parser import ParseError, parse_batch, parse_packet
from repro.packet.builder import build_packet
from repro.packet.generator import PacketGenerator, TraceConfig

__all__ = [
    "Ethernet",
    "Header",
    "Icmp",
    "IPv4",
    "IPv6",
    "Mpls",
    "Packet",
    "PacketBatch",
    "PacketGenerator",
    "ParseError",
    "Tcp",
    "TraceConfig",
    "Udp",
    "Vlan",
    "build_packet",
    "packed_masked_key",
    "parse_batch",
    "parse_packet",
]
