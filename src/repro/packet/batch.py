"""Columnar packet batches — the runtime's decode-free representation.

A :class:`PacketBatch` holds one batch of extracted-field dicts as dense
numpy columns: per field, one ``uint64`` lane per 64 bits of value width
plus an optional presence byte, exactly the layout the shared-memory
:class:`~repro.runtime.transport.PacketBlockCodec` ships between
processes.  Identical packet *objects* (traces sample flow pools of
shared dicts) are stored once as a **row**; a ``pick`` indirection array
maps batch positions onto rows, so duplicate-heavy traffic keeps its
aliasing and every vectorized operation runs over distinct rows instead
of positions.

The point of the container is that the hot lookup tiers never leave it:

- :meth:`key_hashes` folds a field subset's lanes (and presence bytes)
  into one ``uint64`` hash per row with numpy — the microflow probe and
  the sharded runtime's worker assignment both key on it;
- :meth:`packed_keys` / :meth:`masked_packed_keys` produce exact packed
  byte keys per row (full-tuple for the microflow tier, ``value & mask``
  under a megaflow wildcard mask), so a hash hit is *verified* against
  the real key and collisions degrade to cache misses, never to wrong
  results;
- :meth:`row_fields` / :meth:`fields_at` materialise plain dicts lazily,
  one distinct row at a time, only for packets that actually need the
  dict path (cache misses walking the full pipeline).

Batches slice into cheap views (`batch[a:b]`) that share the underlying
column store — and therefore share the per-row dict cache *and* the
per-row key/hash memos, so chunking one workload event into
pipeline-sized batches vectorises each key computation once for the
whole event.

``frame_len`` (:data:`~repro.packet.headers.FRAME_LEN_FIELD`) rides
along as one more column for byte accounting (:meth:`frame_lengths`)
but is **never** part of a key or mask: :meth:`key_hashes` and friends
take explicit field-name lists, and no match schema or megaflow mask
contains it.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping, Sequence
from typing import NamedTuple

import numpy as np
from numpy.typing import NDArray

from repro.packet.headers import FRAME_LEN_FIELD, transport_schema

_LANE_MASK = 0xFFFFFFFFFFFFFFFF

#: FNV-1a style constants for the vectorized hash combine (wraparound
#: uint64 arithmetic; numpy integer ops wrap silently, which is exactly
#: the semantics a hash mix wants).
_HASH_SEED = np.uint64(0xCBF29CE484222325)
_HASH_PRIME = np.uint64(0x100000001B3)
_HASH_MISSING = np.uint64(0x9E3779B97F4A7C15)


#: One 64-bit slice of a field's values, one element per distinct row.
UIntLane = NDArray[np.uint64]

#: Presence bytes (0/1) per distinct row.
PresenceLane = NDArray[np.uint8]

#: Row indices — the ``pick`` indirection and all gather/scatter maps.
IndexArray = NDArray[np.int64]


class FieldLanes(NamedTuple):
    """One field's per-row storage: uint64 lanes and presence bytes."""

    lanes: tuple[UIntLane, ...]
    present: PresenceLane | None  # 0/1 per row; None = all present


def _lanes_for(bits: int) -> int:
    return max(1, (bits + 63) // 64)


class _ColumnStore:
    """Shared row storage behind one or more :class:`PacketBatch` views.

    Holds the distinct rows' columns plus every lazy per-row memo (dict
    materialisation, key hashes, packed keys, masked keys), so sliced
    views of one batch amortise each computation across all of them.
    """

    __slots__ = (
        "rows",
        "columns",
        "row_cache",
        "key_memo",
        "mask_memo",
    )

    def __init__(self, rows: int, columns: dict[str, FieldLanes]) -> None:
        self.rows = rows
        self.columns = columns
        #: row index -> materialised field dict (aliased across picks).
        self.row_cache: dict[int, dict[str, int]] = {}
        #: field-name tuple -> (layout sig, hashes, packed byte keys).
        self.key_memo: dict[tuple[str, ...], tuple] = {}
        #: mask signature -> packed masked byte keys per row.
        self.mask_memo: dict[tuple, list[bytes]] = {}


class PacketBatch:
    """A columnar view over (a slice of) one batch of packets."""

    __slots__ = ("_store", "pick")

    def __init__(self, store: _ColumnStore, pick: np.ndarray) -> None:
        self._store = store
        self.pick = pick

    # -- construction --------------------------------------------------

    @classmethod
    def from_dicts(
        cls,
        batch: Sequence[Mapping[str, int]],
        schema: Mapping[str, int] | None = None,
    ) -> PacketBatch:
        """Build a columnar batch from field dicts.

        Packets that are the *same dict object* become one row (the
        ``pick`` column rebuilds the aliasing, and :meth:`row_fields`
        hands the original dicts back), mirroring the transport codec's
        identity dedup.  ``schema`` defaults to
        :func:`~repro.packet.headers.transport_schema`; fields outside
        it are appended in sorted order with a 64-bit default width
        (widened automatically when a value needs more lanes).
        """
        field_bits = dict(schema if schema is not None else transport_schema())
        row_of: dict[int, int] = {}
        rows: list[Mapping[str, int]] = []
        pick = np.empty(len(batch), dtype=np.int64)
        for position, packet in enumerate(batch):
            row = row_of.get(id(packet))
            if row is None:
                row = row_of[id(packet)] = len(rows)
                rows.append(packet)
            pick[position] = row

        present_names: dict[str, None] = {}
        for row in rows:
            for name in row:
                present_names.setdefault(name, None)
        names = [name for name in field_bits if name in present_names]
        names += sorted(
            name for name in present_names if name not in field_bits
        )

        columns: dict[str, FieldLanes] = {}
        for name in names:
            columns[name] = _encode_column(
                name, [row.get(name) for row in rows], field_bits.get(name, 64)
            )
        store = _ColumnStore(len(rows), columns)
        # The originals *are* the row dicts: the dict fallback hands the
        # caller's own aliased objects back, byte-for-byte.
        store.row_cache = dict(enumerate(rows))
        return cls(store, pick)

    @classmethod
    def from_columns(
        cls,
        rows: int,
        columns: dict[str, FieldLanes],
        pick: np.ndarray,
    ) -> PacketBatch:
        """Wrap pre-built columns (the shared-memory attach path)."""
        return cls(_ColumnStore(rows, columns), np.asarray(pick, dtype=np.int64))

    # -- container protocol --------------------------------------------

    def __len__(self) -> int:
        return len(self.pick)

    def __getitem__(
        self, index: int | slice
    ) -> PacketBatch | dict[str, int]:
        if isinstance(index, slice):
            return PacketBatch(self._store, self.pick[index])
        return self.fields_at(int(index))

    def __iter__(self) -> Iterator[dict[str, int]]:
        for row in self.pick.tolist():
            yield self.row_fields(row)

    def select(self, positions: Sequence[int]) -> PacketBatch:
        """A view of the given batch positions (shares the store)."""
        return PacketBatch(
            self._store, self.pick[np.asarray(positions, dtype=np.int64)]
        )

    def compacted(self) -> PacketBatch:
        """A batch whose store holds only the rows this view picks.

        Sliced views share their event's (possibly huge) column store;
        encoding one into a transport block must ship the view's rows,
        not the whole event.  Returns ``self`` when every store row is
        already in use; otherwise gathers the needed rows (the write-
        side twin of the codec's ``attach`` subsetting).  Key memos and
        the row-dict cache are *not* carried over — compacted batches
        are transient encode inputs.
        """
        store = self._store
        needed, inverse = np.unique(self.pick, return_inverse=True)
        if len(needed) == store.rows:
            return self
        columns = {
            name: FieldLanes(
                tuple(lane[needed] for lane in lanes),
                None if present is None else present[needed],
            )
            for name, (lanes, present) in store.columns.items()
        }
        return PacketBatch(
            _ColumnStore(len(needed), columns), inverse.astype(np.int64)
        )

    @property
    def rows(self) -> int:
        """Distinct rows behind the *whole* store (views included)."""
        return self._store.rows

    def field_names(self) -> tuple[str, ...]:
        return tuple(self._store.columns)

    def column(self, name: str) -> FieldLanes | None:
        return self._store.columns.get(name)

    # -- lazy dict materialisation -------------------------------------

    def row_fields(self, row: int) -> dict[str, int]:
        """The field dict for one distinct row (materialised once and
        aliased across every position that picks it)."""
        cached = self._store.row_cache.get(row)
        if cached is None:
            cached = self._store.row_cache[row] = self._materialise(row)
        return cached

    def fields_at(self, position: int) -> dict[str, int]:
        return self.row_fields(int(self.pick[position]))

    def dicts(self) -> list[dict[str, int]]:
        """Every position's dict, aliasing preserved (the full decode)."""
        return [self.row_fields(row) for row in self.pick.tolist()]

    def _materialise(self, row: int) -> dict[str, int]:
        fields: dict[str, int] = {}
        for name, (lanes, present) in self._store.columns.items():
            if present is not None and not present[row]:
                continue
            value = int(lanes[0][row])
            for lane_index in range(1, len(lanes)):
                value |= int(lanes[lane_index][row]) << (64 * lane_index)
            fields[name] = value
        return fields

    # -- byte accounting ------------------------------------------------

    def frame_lengths(self) -> np.ndarray:
        """Per-position on-wire frame lengths (0 where absent)."""
        column = self._store.columns.get(FRAME_LEN_FIELD)
        if column is None:
            return np.zeros(len(self.pick), dtype=np.int64)
        lane = column.lanes[0].astype(np.int64)
        if column.present is not None:
            lane = lane * column.present
        return lane[self.pick]

    @property
    def byte_total(self) -> int:
        return int(self.frame_lengths().sum())

    # -- vectorized keys ------------------------------------------------

    def key_hashes(self, field_names: Sequence[str]) -> np.ndarray:
        """One ``uint64`` hash per *row* over the named fields.

        The combine folds every lane and the presence byte per field, so
        a field carrying value 0 and a missing field hash differently,
        and only the named fields participate — hashing a schema that
        excludes ``frame_len`` provably cannot see it.
        """
        return self._keys(tuple(field_names))[0]

    def packed_keys(
        self, field_names: Sequence[str]
    ) -> tuple[tuple, list[bytes]]:
        """Exact packed key per row over the named fields.

        Returns ``(layout signature, keys)``: the signature names the
        field/lane layout the bytes were packed under, so keys from
        batches that happened to widen a field differently can never
        be confused (a mismatch reads as a cache miss).
        """
        _, _, sig, packed = self._keys(tuple(field_names))
        return sig, packed

    def probe_keys(
        self, field_names: Sequence[str]
    ) -> tuple[tuple, list[int], list[bytes]]:
        """``(signature, hashes, packed keys)`` per row as plain Python
        objects — the microflow probe's working set, memoized on the
        store so chunked views of one workload event convert exactly
        once."""
        _, hashes, sig, packed = self._keys(tuple(field_names))
        return sig, hashes, packed

    def _keys(self, names: tuple[str, ...]) -> tuple:
        memo = self._store.key_memo.get(names)
        if memo is None:
            memo = self._store.key_memo[names] = self._compute_keys(names)
        return memo

    def _compute_keys(self, names: tuple[str, ...]) -> tuple:
        rows = self._store.rows
        hashes = np.full(rows, _HASH_SEED, dtype=np.uint64)
        stack: list[np.ndarray] = []
        sig: list[tuple[str, int]] = []
        zeros = ones = None
        for name in names:
            column = self._store.columns.get(name)
            if column is None:
                if zeros is None:
                    zeros = np.zeros(rows, dtype=np.uint64)
                lanes: tuple[np.ndarray, ...] = (zeros,)
                present = zeros
            else:
                lanes = column.lanes
                if column.present is None:
                    if ones is None:
                        ones = np.ones(rows, dtype=np.uint64)
                    present = ones
                else:
                    present = column.present.astype(np.uint64)
            for lane in lanes:
                hashes = (hashes ^ lane) * _HASH_PRIME
                stack.append(lane)
            hashes = (hashes ^ (present + _HASH_MISSING)) * _HASH_PRIME
            stack.append(present)
            sig.append((name, len(lanes)))
        packed = _pack_rows(stack, rows)
        return hashes, hashes.tolist(), tuple(sig), packed

    def masked_packed_keys(self, mask: Sequence[tuple[str, int]]) -> list[bytes]:
        """Packed ``value & mask`` key per row under a megaflow mask.

        The layout is a pure function of the mask (lane counts from each
        field's mask bits, presence bits packed into one trailing
        column), so :func:`packed_masked_key` produces byte-identical
        keys for single dicts — the install-time side of the megaflow
        packed index.
        """
        mask = tuple(mask)
        memo = self._store.mask_memo.get(mask)
        if memo is None:
            memo = self._store.mask_memo[mask] = self._compute_masked(mask)
        return memo

    def _compute_masked(self, mask: tuple[tuple[str, int], ...]) -> list[bytes]:
        assert len(mask) <= 64, "mask wider than the presence word"
        rows = self._store.rows
        stack: list[np.ndarray] = []
        presence = np.zeros(rows, dtype=np.uint64)
        zeros = None
        for bit, (name, bits) in enumerate(mask):
            column = self._store.columns.get(name)
            if column is None:
                if zeros is None:
                    zeros = np.zeros(rows, dtype=np.uint64)
                for _ in range(_lanes_for(bits.bit_length())):
                    stack.append(zeros)
                continue
            lanes, present = column
            if present is None:
                presence |= np.uint64(1 << bit)
            else:
                presence |= present.astype(np.uint64) << np.uint64(bit)
            for lane_index in range(_lanes_for(bits.bit_length())):
                lane_mask = np.uint64((bits >> (64 * lane_index)) & _LANE_MASK)
                if lane_index < len(lanes):
                    stack.append(lanes[lane_index] & lane_mask)
                else:
                    if zeros is None:
                        zeros = np.zeros(rows, dtype=np.uint64)
                    stack.append(zeros)
        stack.append(presence)
        return _pack_rows(stack, rows)


def packed_masked_key(
    mask: Sequence[tuple[str, int]], fields: Mapping[str, int]
) -> bytes:
    """The single-dict twin of :meth:`PacketBatch.masked_packed_keys`.

    Byte-identical to the vectorized packing for the same packet, so a
    megaflow entry installed from the dict path is found by the columnar
    probe (property-tested in ``tests/packet/test_batch.py``).
    """
    words: list[int] = []
    presence = 0
    for bit, (name, bits) in enumerate(mask):
        value = fields.get(name)
        if value is not None:
            presence |= 1 << bit
            value &= bits
        else:
            value = 0
        for lane_index in range(_lanes_for(bits.bit_length())):
            words.append((value >> (64 * lane_index)) & _LANE_MASK)
    words.append(presence)
    return np.asarray(words, dtype=np.uint64).tobytes()


def _pack_rows(stack: Sequence[np.ndarray], rows: int) -> list[bytes]:
    """Pack per-row uint64 columns into one bytes key per row."""
    if not stack:
        return [b""] * rows
    packed = np.empty((rows, len(stack)), dtype=np.uint64)
    for i, column in enumerate(stack):
        packed[:, i] = column
    return packed.view(np.dtype((np.void, packed.dtype.itemsize * len(stack)))).ravel().tolist()


def _encode_column(
    name: str, values: Sequence[int | None], bits: int
) -> FieldLanes:
    """Columnarise one field's per-row values (width-fallback mirroring
    the transport codec: values wider than advertised get extra lanes)."""
    has_missing = any(value is None for value in values)
    present = (
        np.fromiter(
            (value is not None for value in values),
            dtype=np.uint8,
            count=len(values),
        )
        if has_missing
        else None
    )
    lanes = _lanes_for(bits)
    if lanes == 1:
        try:
            lane = np.fromiter(
                (0 if value is None else value for value in values),
                dtype=np.uint64,
                count=len(values),
            )
            return FieldLanes((lane,), present)
        except (OverflowError, ValueError, TypeError):
            pass  # wider than advertised; fall through to lane split
    lanes = max(
        lanes,
        max((_value_lanes(name, value) for value in values), default=1),
    )
    arrays = tuple(
        np.fromiter(
            (
                0
                if value is None
                else (value >> (64 * lane_index)) & _LANE_MASK
                for value in values
            ),
            dtype=np.uint64,
            count=len(values),
        )
        for lane_index in range(lanes)
    )
    return FieldLanes(arrays, present)


def _value_lanes(name: str, value: int | None) -> int:
    """Lanes one value needs (rejecting negatives early: lane splitting
    of negative ints would silently corrupt the roundtrip)."""
    if value is None:
        return 1
    if value < 0:
        raise ValueError(f"field {name!r} has negative value {value}")
    return max(1, (value.bit_length() + 63) // 64)
