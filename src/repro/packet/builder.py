"""Wire-format serialisation: :class:`Packet` -> bytes.

Implements real Ethernet II / 802.1Q / MPLS / IPv4 / IPv6 / TCP / UDP /
ICMP encodings, including the IPv4 header checksum, so traces produced
here can be consumed by external tools and so the parser has a genuine
round-trip partner to test against.
"""

from __future__ import annotations

import struct

from repro.packet.headers import (
    ETHERTYPE_MPLS,
    ETHERTYPE_QINQ,
    ETHERTYPE_VLAN,
    Ethernet,
    Header,
    Icmp,
    IPv4,
    IPv6,
    Mpls,
    Tcp,
    Udp,
    Vlan,
)
from repro.packet.packet import Packet


def ipv4_checksum(header: bytes) -> int:
    """Compute the RFC 791 ones-complement header checksum."""
    if len(header) % 2:
        header += b"\x00"
    total = sum(struct.unpack(f"!{len(header) // 2}H", header))
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF


def _encode_ethernet(header: Ethernet) -> bytes:
    return (
        header.dst.to_bytes(6, "big")
        + header.src.to_bytes(6, "big")
        + struct.pack("!H", header.ethertype)
    )


def _encode_vlan(header: Vlan) -> bytes:
    tci = (header.pcp << 13) | (header.dei << 12) | header.vid
    return struct.pack("!HH", tci, header.ethertype)


def _encode_mpls(header: Mpls) -> bytes:
    word = (header.label << 12) | (header.tc << 9) | (header.bos << 8) | header.ttl
    return struct.pack("!I", word)


def _encode_ipv4(header: IPv4, payload_length: int) -> bytes:
    version_ihl = (4 << 4) | 5
    dscp_ecn = (header.dscp << 2) | header.ecn
    total_length = 20 + payload_length
    without_checksum = struct.pack(
        "!BBHHHBBH4s4s",
        version_ihl,
        dscp_ecn,
        total_length,
        header.identification,
        0,  # flags/fragment offset
        header.ttl,
        header.proto,
        0,  # checksum placeholder
        header.src.to_bytes(4, "big"),
        header.dst.to_bytes(4, "big"),
    )
    checksum = ipv4_checksum(without_checksum)
    return without_checksum[:10] + struct.pack("!H", checksum) + without_checksum[12:]


def _encode_ipv6(header: IPv6, payload_length: int) -> bytes:
    first_word = (
        (6 << 28) | (header.traffic_class << 20) | header.flow_label
    )
    return (
        struct.pack(
            "!IHBB", first_word, payload_length, header.next_header, header.hop_limit
        )
        + header.src.to_bytes(16, "big")
        + header.dst.to_bytes(16, "big")
    )


def _encode_tcp(header: Tcp) -> bytes:
    data_offset_flags = (5 << 12) | header.flags
    return struct.pack(
        "!HHIIHHHH",
        header.src_port,
        header.dst_port,
        header.seq,
        header.ack,
        data_offset_flags,
        header.window,
        0,  # checksum not modelled (needs pseudo-header)
        0,  # urgent pointer
    )


def _encode_udp(header: Udp, payload_length: int) -> bytes:
    return struct.pack(
        "!HHHH", header.src_port, header.dst_port, 8 + payload_length, 0
    )


def _encode_icmp(header: Icmp) -> bytes:
    return struct.pack("!BBH", header.icmp_type, header.code, 0)


def build_packet(packet: Packet) -> bytes:
    """Serialise a packet's header stack and payload to wire bytes.

    Raises:
        ValueError: if a header's declared next-protocol disagrees with the
            header that actually follows (e.g. an Ethernet ethertype of
            0x8100 not followed by a VLAN tag) — such stacks would not
            round-trip through the parser.
    """
    _validate_stack(packet.headers)
    encoded_tail = packet.payload
    # Encode from the innermost header outwards so length/checksum fields
    # that depend on payload size are correct.
    for header in reversed(packet.headers):
        if isinstance(header, Ethernet):
            encoded_tail = _encode_ethernet(header) + encoded_tail
        elif isinstance(header, Vlan):
            encoded_tail = _encode_vlan(header) + encoded_tail
        elif isinstance(header, Mpls):
            encoded_tail = _encode_mpls(header) + encoded_tail
        elif isinstance(header, IPv4):
            encoded_tail = _encode_ipv4(header, len(encoded_tail)) + encoded_tail
        elif isinstance(header, IPv6):
            encoded_tail = _encode_ipv6(header, len(encoded_tail)) + encoded_tail
        elif isinstance(header, Tcp):
            encoded_tail = _encode_tcp(header) + encoded_tail
        elif isinstance(header, Udp):
            encoded_tail = _encode_udp(header, len(encoded_tail)) + encoded_tail
        elif isinstance(header, Icmp):
            encoded_tail = _encode_icmp(header) + encoded_tail
        else:
            raise ValueError(f"cannot encode header type {type(header).__name__}")
    return encoded_tail


def _validate_stack(headers: tuple[Header, ...]) -> None:
    for current, following in zip(headers, headers[1:]):
        declared = _declared_next(current)
        if declared is None:
            continue
        if not isinstance(following, declared):
            raise ValueError(
                f"{type(current).__name__} declares next protocol "
                f"{declared.__name__ if isinstance(declared, type) else declared}, "
                f"but {type(following).__name__} follows"
            )


def _declared_next(header: Header) -> type[Header] | None:
    from repro.packet.headers import (
        ETHERTYPE_IPV4,
        ETHERTYPE_IPV6,
        IP_PROTO_ICMP,
        IP_PROTO_TCP,
        IP_PROTO_UDP,
    )

    mapping = {
        ETHERTYPE_VLAN: Vlan,
        ETHERTYPE_QINQ: Vlan,
        ETHERTYPE_MPLS: Mpls,
        ETHERTYPE_IPV4: IPv4,
        ETHERTYPE_IPV6: IPv6,
    }
    if isinstance(header, (Ethernet, Vlan)):
        return mapping.get(header.ethertype)
    if isinstance(header, IPv4):
        return {IP_PROTO_TCP: Tcp, IP_PROTO_UDP: Udp, IP_PROTO_ICMP: Icmp}.get(
            header.proto
        )
    if isinstance(header, IPv6):
        return {IP_PROTO_TCP: Tcp, IP_PROTO_UDP: Udp}.get(header.next_header)
    return None
