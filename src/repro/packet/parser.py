"""Wire-format parsing: bytes -> :class:`Packet`.

The inverse of :mod:`repro.packet.builder`.  Parsing is strict about
structural validity (truncated headers raise :class:`ParseError`) but
tolerant of unknown payloads: an unrecognised ethertype or IP protocol
simply terminates header parsing and the rest becomes the payload, which
is how a real switch parser behaves.
"""

from __future__ import annotations

import struct
from collections.abc import Iterable

from repro.packet.headers import (
    ETHERTYPE_IPV4,
    ETHERTYPE_IPV6,
    ETHERTYPE_MPLS,
    ETHERTYPE_QINQ,
    ETHERTYPE_VLAN,
    IP_PROTO_ICMP,
    IP_PROTO_TCP,
    IP_PROTO_UDP,
    Ethernet,
    Header,
    Icmp,
    IPv4,
    IPv6,
    Mpls,
    Tcp,
    Udp,
    Vlan,
)
from repro.packet.batch import PacketBatch
from repro.packet.packet import Packet


class ParseError(ValueError):
    """Raised when the byte stream is too short for a declared header."""


def _need(data: bytes, offset: int, count: int, what: str) -> None:
    if len(data) - offset < count:
        raise ParseError(
            f"truncated {what}: need {count} bytes at offset {offset}, "
            f"have {len(data) - offset}"
        )


def parse_packet(data: bytes, in_port: int = 0) -> Packet:
    """Parse wire bytes into a :class:`Packet`.

    The frame's on-wire length is recorded as ``Packet.frame_len``, so
    parsed traffic feeds the per-entry byte counters (and bits/sec
    reporting) the same way generated traces do.

    Args:
        data: the raw frame, starting at the Ethernet destination address.
        in_port: switch ingress port to attach to the packet.
    """
    headers: list[Header] = []
    offset = 0

    _need(data, offset, 14, "Ethernet header")
    dst = int.from_bytes(data[offset : offset + 6], "big")
    src = int.from_bytes(data[offset + 6 : offset + 12], "big")
    (ethertype,) = struct.unpack_from("!H", data, offset + 12)
    headers.append(Ethernet(dst=dst, src=src, ethertype=ethertype))
    offset += 14

    while ethertype in (ETHERTYPE_VLAN, ETHERTYPE_QINQ):
        _need(data, offset, 4, "802.1Q tag")
        tci, inner_type = struct.unpack_from("!HH", data, offset)
        headers.append(
            Vlan(
                vid=tci & 0x0FFF,
                pcp=tci >> 13,
                dei=(tci >> 12) & 1,
                ethertype=inner_type,
            )
        )
        ethertype = inner_type
        offset += 4

    while ethertype == ETHERTYPE_MPLS:
        _need(data, offset, 4, "MPLS shim")
        (word,) = struct.unpack_from("!I", data, offset)
        shim = Mpls(
            label=word >> 12, tc=(word >> 9) & 0x7, bos=(word >> 8) & 1, ttl=word & 0xFF
        )
        headers.append(shim)
        offset += 4
        if shim.bos:
            # After bottom-of-stack we cannot know the payload type without
            # inspection; stop header parsing here.
            ethertype = 0

    ip_proto: int | None = None
    if ethertype == ETHERTYPE_IPV4:
        _need(data, offset, 20, "IPv4 header")
        (
            version_ihl,
            dscp_ecn,
            total_length,
            identification,
            _flags_frag,
            ttl,
            proto,
            _checksum,
        ) = struct.unpack_from("!BBHHHBBH", data, offset)[:8]
        if version_ihl >> 4 != 4:
            raise ParseError(f"IPv4 version field is {version_ihl >> 4}")
        ihl_bytes = (version_ihl & 0xF) * 4
        _need(data, offset, ihl_bytes, "IPv4 header with options")
        ip_src = int.from_bytes(data[offset + 12 : offset + 16], "big")
        ip_dst = int.from_bytes(data[offset + 16 : offset + 20], "big")
        headers.append(
            IPv4(
                src=ip_src,
                dst=ip_dst,
                proto=proto,
                dscp=dscp_ecn >> 2,
                ecn=dscp_ecn & 0x3,
                ttl=ttl,
                identification=identification,
                total_length=total_length,
            )
        )
        offset += ihl_bytes
        ip_proto = proto
    elif ethertype == ETHERTYPE_IPV6:
        _need(data, offset, 40, "IPv6 header")
        (first_word, payload_length, next_header, hop_limit) = struct.unpack_from(
            "!IHBB", data, offset
        )
        if first_word >> 28 != 6:
            raise ParseError(f"IPv6 version field is {first_word >> 28}")
        ip6_src = int.from_bytes(data[offset + 8 : offset + 24], "big")
        ip6_dst = int.from_bytes(data[offset + 24 : offset + 40], "big")
        headers.append(
            IPv6(
                src=ip6_src,
                dst=ip6_dst,
                next_header=next_header,
                traffic_class=(first_word >> 20) & 0xFF,
                flow_label=first_word & 0xFFFFF,
                hop_limit=hop_limit,
                payload_length=payload_length,
            )
        )
        offset += 40
        ip_proto = next_header

    if ip_proto == IP_PROTO_TCP:
        _need(data, offset, 20, "TCP header")
        (sport, dport, seq, ack, off_flags, window, _ck, _urg) = struct.unpack_from(
            "!HHIIHHHH", data, offset
        )
        data_offset_bytes = (off_flags >> 12) * 4
        _need(data, offset, data_offset_bytes, "TCP header with options")
        headers.append(
            Tcp(
                src_port=sport,
                dst_port=dport,
                seq=seq,
                ack=ack,
                flags=off_flags & 0x1FF,
                window=window,
            )
        )
        offset += data_offset_bytes
    elif ip_proto == IP_PROTO_UDP:
        _need(data, offset, 8, "UDP header")
        (sport, dport, length, _ck) = struct.unpack_from("!HHHH", data, offset)
        headers.append(Udp(src_port=sport, dst_port=dport, length=length))
        offset += 8
    elif ip_proto == IP_PROTO_ICMP:
        _need(data, offset, 4, "ICMP header")
        (icmp_type, code, _ck) = struct.unpack_from("!BBH", data, offset)
        headers.append(Icmp(icmp_type=icmp_type, code=code))
        offset += 4

    return Packet(
        headers=tuple(headers),
        in_port=in_port,
        payload=data[offset:],
        frame_len=len(data),
    )


def parse_batch(frames: Iterable[bytes], in_port: int = 0) -> PacketBatch:
    """Parse a sequence of wire frames straight into a columnar
    :class:`~repro.packet.batch.PacketBatch`.

    Each frame's extracted match fields (frame length included) become
    one row; the runtime's vectorized lookup tiers consume the batch
    without ever building a per-packet dict again.
    """
    return PacketBatch.from_dicts(
        [parse_packet(frame, in_port=in_port).match_fields() for frame in frames]
    )
