"""Deterministic packet-trace generation.

Benchmarks need traces with controlled properties: fully random traffic
(mostly table misses) and traffic drawn *from* a rule set (controlled hit
rate).  The generator is seeded, so every benchmark run sees an identical
trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator, Mapping, Sequence

import numpy as np

from repro.openflow.match import (
    ExactMatch,
    FieldMatch,
    MaskedMatch,
    Match,
    PrefixMatch,
    RangeMatch,
    WildcardMatch,
)
from repro.packet.headers import (
    ETHERTYPE_IPV4,
    IP_PROTO_TCP,
    IP_PROTO_UDP,
    Ethernet,
    Header,
    IPv4,
    Tcp,
    Udp,
    Vlan,
)
from repro.packet.batch import PacketBatch
from repro.packet.packet import Packet
from repro.util.bits import mask_of, prefix_range


#: Simple-IMIX mix: 7 small, 4 medium, 1 MTU frame per 12 packets — the
#: classic Internet mix benchmark profile.
IMIX_FRAME_LENGTHS = (64, 576, 1500)
IMIX_FRAME_WEIGHTS = (7, 4, 1)

#: Default length for the ``fixed`` distribution: an MTU-sized frame.
DEFAULT_FRAME_LEN = 1500

_MIN_FRAME_LEN = 64  # minimum Ethernet frame
_MAX_FRAME_LEN = 9000  # jumbo-frame ceiling for the heavy-tailed draw

#: Frame-length distribution names accepted by :func:`frame_lengths`.
FRAME_LEN_DISTRIBUTIONS = ("fixed", "imix", "pareto")


def frame_lengths(
    rng: np.random.Generator, count: int, dist: str | int = "fixed"
) -> list[int]:
    """Sample ``count`` on-wire frame lengths (bytes) from a named
    distribution:

    - ``"fixed"`` (or any ``int``): every frame the same length —
      ``DEFAULT_FRAME_LEN`` for the name, the value itself for an int;
    - ``"imix"``: the simple-IMIX 7:4:1 mix of 64/576/1500-byte frames;
    - ``"pareto"``: heavy-tailed — most frames near the 64-byte minimum
      with a power-law tail clipped at the jumbo ceiling, the shape of
      measured datacenter length distributions.
    """
    if isinstance(dist, int):
        if dist < 1:
            raise ValueError(f"fixed frame length must be positive, got {dist}")
        return [dist] * count
    if dist == "fixed":
        return [DEFAULT_FRAME_LEN] * count
    if dist == "imix":
        weights = np.asarray(IMIX_FRAME_WEIGHTS, dtype=float)
        picks = rng.choice(
            len(IMIX_FRAME_LENGTHS), size=count, p=weights / weights.sum()
        )
        return [IMIX_FRAME_LENGTHS[i] for i in picks]
    if dist == "pareto":
        draw = _MIN_FRAME_LEN * (1.0 + rng.pareto(1.2, size=count))
        return [int(min(v, _MAX_FRAME_LEN)) for v in draw]
    raise ValueError(
        f"unknown frame-length distribution {dist!r}; "
        f"expected an int or one of {FRAME_LEN_DISTRIBUTIONS}"
    )


@dataclass(frozen=True)
class TraceConfig:
    """Knobs for random trace generation."""

    vlan_probability: float = 0.3
    udp_probability: float = 0.4
    port_count: int = 48
    seed: int = 0x0F10


class PacketGenerator:
    """Seeded random generator of packets and extracted-field dicts."""

    def __init__(self, config: TraceConfig | None = None) -> None:
        self.config = config if config is not None else TraceConfig()
        self._rng = np.random.default_rng(self.config.seed)

    def _random_value(self, bits: int) -> int:
        # numpy integers cap at 64 bits; compose wider values from chunks.
        value = 0
        remaining = bits
        while remaining > 0:
            chunk = min(remaining, 32)
            value = (value << chunk) | int(self._rng.integers(0, 1 << chunk))
            remaining -= chunk
        return value

    def random_packet(self) -> Packet:
        """Generate one random Ethernet/[VLAN]/IPv4/{TCP,UDP} packet."""
        config = self.config
        use_vlan = self._rng.random() < config.vlan_probability
        use_udp = self._rng.random() < config.udp_probability
        headers: list[Header] = []
        eth_kwargs = {
            "dst": self._random_value(48),
            "src": self._random_value(48),
        }
        if use_vlan:
            headers.append(Ethernet(ethertype=0x8100, **eth_kwargs))
            headers.append(
                Vlan(vid=int(self._rng.integers(1, 4095)), ethertype=ETHERTYPE_IPV4)
            )
        else:
            headers.append(Ethernet(ethertype=ETHERTYPE_IPV4, **eth_kwargs))
        proto = IP_PROTO_UDP if use_udp else IP_PROTO_TCP
        headers.append(
            IPv4(src=self._random_value(32), dst=self._random_value(32), proto=proto)
        )
        ports = (
            int(self._rng.integers(0, 1 << 16)),
            int(self._rng.integers(0, 1 << 16)),
        )
        if use_udp:
            headers.append(Udp(src_port=ports[0], dst_port=ports[1]))
        else:
            headers.append(Tcp(src_port=ports[0], dst_port=ports[1]))
        in_port = int(self._rng.integers(0, self.config.port_count))
        return Packet(headers=tuple(headers), in_port=in_port)

    def trace(self, count: int) -> Iterator[Packet]:
        """Yield ``count`` random packets."""
        for _ in range(count):
            yield self.random_packet()

    def frame_lengths(self, count: int, dist: str | int = "fixed") -> list[int]:
        """Sample frame lengths from this generator's seeded stream (see
        the module-level :func:`frame_lengths`)."""
        return frame_lengths(self._rng, count, dist)

    def fields_matching(
        self,
        match: Match | Mapping[str, FieldMatch],
        fill_fields: Sequence[str] = (),
    ) -> dict[str, int]:
        """Generate an extracted-field dict guaranteed to satisfy ``match``.

        ``fill_fields`` names schema fields that must be present even when
        the match leaves them free (they get random in-width values), so
        classifiers that key on a full field concatenation — e.g. the TCAM
        baseline — see a complete key.
        """
        from repro.openflow.fields import REGISTRY

        fields: dict[str, int] = {}
        for name, predicate in match.items():
            fields[name] = self._value_satisfying(predicate)
        for name in fill_fields:
            if name not in fields:
                fields[name] = self._random_value(REGISTRY[name].bits)
        # Fill in common context fields if the match left them free.
        fields.setdefault("in_port", int(self._rng.integers(0, self.config.port_count)))
        fields.setdefault("eth_type", ETHERTYPE_IPV4)
        return fields

    def random_fields(self, field_names: Sequence[str]) -> dict[str, int]:
        """A fully random extracted-field dict over the given schema.

        Every named field gets an independent uniform in-width value
        (widths from the OXM registry) — the adversarial complement of
        :meth:`fields_matching` used by differential property harnesses:
        random headers mostly miss, and cover engine paths rule-derived
        traffic never reaches.
        """
        from repro.openflow.fields import REGISTRY

        return {
            name: self._random_value(REGISTRY[name].bits)
            for name in field_names
        }

    def field_trace(
        self,
        matches: Sequence[Match],
        count: int,
        hit_rate: float = 1.0,
        fill_fields: Sequence[str] = (),
    ) -> list[dict[str, int]]:
        """Build a trace of field dicts with approximately ``hit_rate``
        drawn from the given matches and the rest fully random."""
        if not 0.0 <= hit_rate <= 1.0:
            raise ValueError(f"hit_rate {hit_rate} outside [0, 1]")
        trace: list[dict[str, int]] = []
        for _ in range(count):
            if matches and self._rng.random() < hit_rate:
                index = int(self._rng.integers(0, len(matches)))
                trace.append(self.fields_matching(matches[index], fill_fields))
            else:
                fields = self.random_packet().match_fields()
                trace.append(
                    self.fields_matching(Match({}), fill_fields) | fields
                    if fill_fields
                    else fields
                )
        return trace

    def flow_pool(
        self,
        matches: Sequence[Match],
        fill_fields: Sequence[str] = (),
    ) -> list[dict[str, int]]:
        """One concrete header ("microflow") per match.

        Repeatedly sampling the same pool element yields *identical*
        field dicts, which is what makes flow-level locality (and
        microflow-cache hits) representable in a trace.
        """
        return [self.fields_matching(match, fill_fields) for match in matches]

    def sample_trace(
        self,
        flows: Sequence[dict[str, int]],
        count: int,
        weights: Sequence[float] | None = None,
    ) -> list[dict[str, int]]:
        """Draw ``count`` packets from a flow pool, i.i.d. per packet.

        ``weights`` (normalized internally) skews the draw — e.g. a zipf
        distribution concentrates traffic on a few heavy flows; ``None``
        samples uniformly.
        """
        if not flows:
            raise ValueError("flow pool is empty")
        p = None
        if weights is not None:
            w = np.asarray(weights, dtype=float)
            if len(w) != len(flows):
                raise ValueError(
                    f"{len(w)} weights for {len(flows)} flows"
                )
            p = w / w.sum()
        picks = self._rng.choice(len(flows), size=count, p=p)
        return [flows[i] for i in picks]

    def sample_batch(
        self,
        flows: Sequence[dict[str, int]],
        count: int,
        weights: Sequence[float] | None = None,
    ) -> PacketBatch:
        """Columnar :meth:`sample_trace`: the drawn trace emitted as one
        :class:`~repro.packet.batch.PacketBatch` (flow-pool aliasing
        becomes shared rows), ready for the runtime's vectorized path."""
        return PacketBatch.from_dicts(self.sample_trace(flows, count, weights))

    def bursty_trace(
        self,
        flows: Sequence[dict[str, int]],
        count: int,
        mean_burst: float = 16.0,
        weights: Sequence[float] | None = None,
    ) -> list[dict[str, int]]:
        """Draw ``count`` packets as back-to-back per-flow bursts.

        Each burst picks one flow (optionally ``weights``-skewed) and
        repeats it for a geometrically distributed run with the given
        mean — the packet-train locality real traffic exhibits.
        """
        if not flows:
            raise ValueError("flow pool is empty")
        if mean_burst < 1.0:
            raise ValueError(f"mean_burst must be >= 1, got {mean_burst}")
        p = None
        if weights is not None:
            w = np.asarray(weights, dtype=float)
            p = w / w.sum()
        trace: list[dict[str, int]] = []
        while len(trace) < count:
            flow = flows[int(self._rng.choice(len(flows), p=p))]
            # geometric(1/mean) already has support {1, 2, ...} and mean
            # mean_burst.
            burst = int(self._rng.geometric(1.0 / mean_burst))
            trace.extend([flow] * min(burst, count - len(trace)))
        return trace

    def _value_satisfying(self, predicate: FieldMatch) -> int:
        if isinstance(predicate, ExactMatch):
            return predicate.value
        if isinstance(predicate, PrefixMatch):
            low, high = prefix_range(predicate.value, predicate.length, predicate.bits)
            return self._random_in(low, high)
        if isinstance(predicate, RangeMatch):
            return self._random_in(predicate.low, predicate.high)
        if isinstance(predicate, MaskedMatch):
            random_bits = self._random_value(predicate.bits)
            return (random_bits & ~predicate.mask & mask_of(predicate.bits)) | (
                predicate.value
            )
        if isinstance(predicate, WildcardMatch):
            return self._random_value(predicate.bits)
        raise TypeError(f"unsupported predicate type {type(predicate).__name__}")

    def _random_in(self, low: int, high: int) -> int:
        span = high - low
        if span == 0:
            return low
        if span < (1 << 63):
            return low + int(self._rng.integers(0, span + 1))
        # Spans wider than 63 bits (IPv6): rejection-sample the offset
        # from span.bit_length() random bits (uniform, < 2 expected draws).
        bits = span.bit_length()
        while True:
            offset = self._random_value(bits)
            if offset <= span:
                return low + offset
