"""Protocol header dataclasses.

Each header is an immutable value object that knows (a) which OpenFlow
match fields it contributes via :meth:`Header.match_fields` and (b) basic
validity constraints on its fields.  Wire-format encoding lives in
:mod:`repro.packet.builder` / :mod:`repro.packet.parser`, keeping the data
model independent of serialisation.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping

from repro.util.bits import mask_of

ETHERTYPE_VLAN = 0x8100
ETHERTYPE_QINQ = 0x88A8
ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_IPV6 = 0x86DD
ETHERTYPE_ARP = 0x0806
ETHERTYPE_MPLS = 0x8847

IP_PROTO_ICMP = 1
IP_PROTO_TCP = 6
IP_PROTO_UDP = 17


class Header:
    """Base class for protocol headers."""

    def match_fields(self) -> dict[str, int]:
        """OpenFlow match fields this header contributes."""
        raise NotImplementedError


def _check_width(name: str, value: int, bits: int) -> None:
    if not 0 <= value <= mask_of(bits):
        raise ValueError(f"{name} value {value:#x} does not fit in {bits} bits")


@dataclass(frozen=True)
class Ethernet(Header):
    """Ethernet II header (no FCS)."""

    dst: int
    src: int
    ethertype: int

    def __post_init__(self) -> None:
        _check_width("eth_dst", self.dst, 48)
        _check_width("eth_src", self.src, 48)
        _check_width("eth_type", self.ethertype, 16)

    def match_fields(self) -> dict[str, int]:
        return {
            "eth_dst": self.dst,
            "eth_src": self.src,
            "eth_type": self.ethertype,
        }


@dataclass(frozen=True)
class Vlan(Header):
    """An 802.1Q tag."""

    vid: int
    pcp: int = 0
    dei: int = 0
    ethertype: int = ETHERTYPE_IPV4  # ethertype of the encapsulated payload

    def __post_init__(self) -> None:
        _check_width("vlan_vid", self.vid, 12)
        _check_width("vlan_pcp", self.pcp, 3)
        _check_width("vlan_dei", self.dei, 1)
        _check_width("eth_type", self.ethertype, 16)

    def match_fields(self) -> dict[str, int]:
        # The OXM vlan_vid field is 13 bits: bit 12 (OFPVID_PRESENT) is set
        # whenever a tag is present.
        return {
            "vlan_vid": self.vid | 0x1000,
            "vlan_pcp": self.pcp,
            "eth_type": self.ethertype,
        }


@dataclass(frozen=True)
class Mpls(Header):
    """One MPLS shim entry."""

    label: int
    tc: int = 0
    bos: int = 1
    ttl: int = 64

    def __post_init__(self) -> None:
        _check_width("mpls_label", self.label, 20)
        _check_width("mpls_tc", self.tc, 3)
        _check_width("mpls_bos", self.bos, 1)
        _check_width("mpls_ttl", self.ttl, 8)

    def match_fields(self) -> dict[str, int]:
        return {"mpls_label": self.label, "mpls_tc": self.tc, "mpls_bos": self.bos}


@dataclass(frozen=True)
class IPv4(Header):
    """IPv4 header (options unsupported, ihl fixed at 5)."""

    src: int
    dst: int
    proto: int
    dscp: int = 0
    ecn: int = 0
    ttl: int = 64
    identification: int = 0
    total_length: int = 20

    def __post_init__(self) -> None:
        _check_width("ipv4_src", self.src, 32)
        _check_width("ipv4_dst", self.dst, 32)
        _check_width("ip_proto", self.proto, 8)
        _check_width("ip_dscp", self.dscp, 6)
        _check_width("ip_ecn", self.ecn, 2)
        _check_width("ttl", self.ttl, 8)
        if self.total_length < 20:
            raise ValueError(f"ipv4 total_length {self.total_length} < header size")

    def match_fields(self) -> dict[str, int]:
        return {
            "ipv4_src": self.src,
            "ipv4_dst": self.dst,
            "ip_proto": self.proto,
            "ip_dscp": self.dscp,
            "ip_ecn": self.ecn,
        }


@dataclass(frozen=True)
class IPv6(Header):
    """IPv6 header (extension headers unsupported)."""

    src: int
    dst: int
    next_header: int
    traffic_class: int = 0
    flow_label: int = 0
    hop_limit: int = 64
    payload_length: int = 0

    def __post_init__(self) -> None:
        _check_width("ipv6_src", self.src, 128)
        _check_width("ipv6_dst", self.dst, 128)
        _check_width("ip_proto", self.next_header, 8)
        _check_width("traffic_class", self.traffic_class, 8)
        _check_width("ipv6_flabel", self.flow_label, 20)

    def match_fields(self) -> dict[str, int]:
        return {
            "ipv6_src": self.src,
            "ipv6_dst": self.dst,
            "ip_proto": self.next_header,
            "ip_dscp": self.traffic_class >> 2,
            "ip_ecn": self.traffic_class & 0x3,
            "ipv6_flabel": self.flow_label,
        }


@dataclass(frozen=True)
class Tcp(Header):
    """TCP header (flags/window modelled, options unsupported)."""

    src_port: int
    dst_port: int
    seq: int = 0
    ack: int = 0
    flags: int = 0
    window: int = 65535

    def __post_init__(self) -> None:
        _check_width("tcp_src", self.src_port, 16)
        _check_width("tcp_dst", self.dst_port, 16)
        _check_width("seq", self.seq, 32)
        _check_width("ack", self.ack, 32)
        _check_width("flags", self.flags, 9)

    def match_fields(self) -> dict[str, int]:
        return {"tcp_src": self.src_port, "tcp_dst": self.dst_port}


@dataclass(frozen=True)
class Udp(Header):
    """UDP header."""

    src_port: int
    dst_port: int
    length: int = 8

    def __post_init__(self) -> None:
        _check_width("udp_src", self.src_port, 16)
        _check_width("udp_dst", self.dst_port, 16)
        if self.length < 8:
            raise ValueError(f"udp length {self.length} < header size")

    def match_fields(self) -> dict[str, int]:
        # Transport-port rules in 5-tuple filter sets are written against
        # generic source/destination ports; expose both OXM namings so
        # either style of rule can match.
        return {
            "udp_src": self.src_port,
            "udp_dst": self.dst_port,
            "tcp_src": self.src_port,
            "tcp_dst": self.dst_port,
        }


@dataclass(frozen=True)
class Icmp(Header):
    """ICMPv4 header."""

    icmp_type: int
    code: int = 0

    def __post_init__(self) -> None:
        _check_width("icmpv4_type", self.icmp_type, 8)
        _check_width("icmpv4_code", self.code, 8)

    def match_fields(self) -> dict[str, int]:
        return {"icmpv4_type": self.icmp_type, "icmpv4_code": self.code}


#: Every header type above, in typical stack order.
HEADER_TYPES: tuple[type[Header], ...] = (
    Ethernet,
    Vlan,
    Mpls,
    IPv4,
    IPv6,
    Tcp,
    Udp,
    Icmp,
)

#: Match fields each header type contributes (the keys its
#: :meth:`Header.match_fields` can emit), kept next to the classes so the
#: schema and the data model cannot drift apart silently —
#: :func:`transport_schema` is validated against this map in tests.
HEADER_MATCH_FIELDS: dict[type[Header], tuple[str, ...]] = {
    Ethernet: ("eth_dst", "eth_src", "eth_type"),
    Vlan: ("vlan_vid", "vlan_pcp", "eth_type"),
    Mpls: ("mpls_label", "mpls_tc", "mpls_bos"),
    IPv4: ("ipv4_src", "ipv4_dst", "ip_proto", "ip_dscp", "ip_ecn"),
    IPv6: (
        "ipv6_src",
        "ipv6_dst",
        "ip_proto",
        "ip_dscp",
        "ip_ecn",
        "ipv6_flabel",
    ),
    Tcp: ("tcp_src", "tcp_dst"),
    Udp: ("udp_src", "udp_dst", "tcp_src", "tcp_dst"),
    Icmp: ("icmpv4_type", "icmpv4_code"),
}

#: Per-packet context carried outside any header.
CONTEXT_FIELDS: tuple[str, ...] = ("in_port", "metadata")

#: Extracted-field-dict key carrying the packet's on-wire frame length in
#: bytes.  It is packet *metadata*, not an OXM match field: no rule
#: matches on it and no partition engine consults it, so it never enters
#: a microflow key's schema tuple nor a megaflow mask — but every
#: ``FlowStats.record`` reads it, which is what makes per-entry byte
#: counters (and bits/sec throughput) real numbers instead of zeros.
FRAME_LEN_FIELD = "frame_len"

#: Width of the frame-length transport lane.  32 bits covers any frame a
#: switch forwards (jumbo frames included) with room to spare.
FRAME_LEN_BITS = 32


def frame_length(packet_fields: Mapping[str, int]) -> int:
    """The frame length (bytes) recorded for a packet's stats, 0 when the
    trace carries no lengths — the single accessor every lookup path's
    ``FlowStats.record`` call goes through."""
    return packet_fields.get(FRAME_LEN_FIELD, 0)


def transport_schema() -> dict[str, int]:
    """Canonical ``field name -> bit width`` schema for packet transports.

    The union of every match field a header can contribute plus the
    context fields, in deterministic (stack, then context) order, with
    widths from the OXM registry.  This is the column order the
    shared-memory :class:`~repro.runtime.transport.PacketBlockCodec`
    lays batches out in; fields outside the schema are appended per
    batch, so the schema is a fast path, not a constraint.

    ``frame_len`` rides along as one more (32-bit, so single-lane)
    column: it is not a match field, but byte-accurate flow stats need
    it on the worker side of the sharded runtime.
    """
    from repro.openflow.fields import REGISTRY

    schema: dict[str, int] = {}
    for header_type in HEADER_TYPES:
        for name in HEADER_MATCH_FIELDS[header_type]:
            if name not in schema:
                schema[name] = REGISTRY[name].bits
    for name in CONTEXT_FIELDS:
        schema[name] = REGISTRY[name].bits
    schema[FRAME_LEN_FIELD] = FRAME_LEN_BITS
    return schema
