"""The :class:`Packet` abstraction: a header stack plus switch context."""

from __future__ import annotations

from dataclasses import dataclass, replace
from collections.abc import Iterator

from repro.packet.headers import (
    FRAME_LEN_FIELD,
    Ethernet,
    Header,
    IPv4,
    Tcp,
    Vlan,
)


@dataclass(frozen=True)
class Packet:
    """An ordered stack of protocol headers with switch-local context.

    ``in_port`` is not carried on the wire; it is supplied by the ingress
    pipeline, which is why it lives on the packet object rather than in a
    header.  ``payload`` is the opaque bytes after the last parsed header.
    ``frame_len`` is the on-wire frame length in bytes (0 = unknown):
    switch-level metadata like ``in_port``, not a header field — it feeds
    per-entry byte counters, never a match.
    """

    headers: tuple[Header, ...]
    in_port: int = 0
    payload: bytes = b""
    metadata: int = 0
    frame_len: int = 0

    def __post_init__(self) -> None:
        if self.in_port < 0:
            raise ValueError(f"invalid in_port {self.in_port}")
        if self.frame_len < 0:
            raise ValueError(f"invalid frame_len {self.frame_len}")
        if self.headers and not isinstance(self.headers[0], Ethernet):
            raise ValueError("packet must start with an Ethernet header")

    def __iter__(self) -> Iterator[Header]:
        return iter(self.headers)

    def match_fields(self) -> dict[str, int]:
        """Extract the OpenFlow match-field dictionary for this packet.

        Header fields are collected outermost-first, so an inner header
        never overrides an outer one for the same field name (relevant for
        QinQ stacks, where the outer VLAN tag is the matchable one).
        """
        fields: dict[str, int] = {"in_port": self.in_port, "metadata": self.metadata}
        if self.frame_len:
            fields[FRAME_LEN_FIELD] = self.frame_len
        for header in self.headers:
            for name, value in header.match_fields().items():
                fields.setdefault(name, value)
        return fields

    def find(self, header_type: type) -> Header | None:
        """Return the outermost header of the given type, if present."""
        for header in self.headers:
            if isinstance(header, header_type):
                return header
        return None

    def with_in_port(self, in_port: int) -> Packet:
        return replace(self, in_port=in_port)

    @property
    def summary(self) -> str:
        """Compact one-line description, e.g. for logs and test failures."""
        parts = [type(h).__name__ for h in self.headers]
        return f"Packet(port={self.in_port}, {'/'.join(parts)})"


def ethernet_ipv4_tcp(
    eth_src: int,
    eth_dst: int,
    ipv4_src: int,
    ipv4_dst: int,
    src_port: int,
    dst_port: int,
    in_port: int = 0,
    vlan: int | None = None,
) -> Packet:
    """Build the common Ethernet/[VLAN]/IPv4/TCP packet in one call."""
    from repro.packet.headers import (
        ETHERTYPE_IPV4,
        ETHERTYPE_VLAN,
        IP_PROTO_TCP,
    )

    headers: list[Header] = []
    if vlan is not None:
        headers.append(Ethernet(dst=eth_dst, src=eth_src, ethertype=ETHERTYPE_VLAN))
        headers.append(Vlan(vid=vlan, ethertype=ETHERTYPE_IPV4))
    else:
        headers.append(Ethernet(dst=eth_dst, src=eth_src, ethertype=ETHERTYPE_IPV4))
    headers.append(IPv4(src=ipv4_src, dst=ipv4_dst, proto=IP_PROTO_TCP))
    headers.append(Tcp(src_port=src_port, dst_port=dst_port))
    return Packet(headers=tuple(headers), in_port=in_port)
