"""Software-controller simulation (the Fig. 5 experiment's harness).

Reproduces the paper's measurement setup: the controller characterises a
rule set into an algorithm file and an action file, then the update
engine charges two cycles per record.  Comparing the optimised (label
method) against the initial (no labels) algorithm files yields the
paper's headline "56.92 % fewer CPU clock cycles on average".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import ArchitectureConfig, DEFAULT_CONFIG
from repro.filters.rule import RuleSet
from repro.update.engine import UpdateCost, UpdateEngine
from repro.update.generator import (
    generate_action_updates,
    generate_algorithm_updates,
)
from repro.update.records import UpdateFile


@dataclass(frozen=True)
class UpdateComparison:
    """Cycle costs of updating one rule set with and without labels."""

    rule_set_name: str
    initial: UpdateCost
    optimised: UpdateCost

    @property
    def saving_percent(self) -> float:
        """Percentage of cycles the label method saves."""
        if self.initial.cycles == 0:
            return 0.0
        return 100.0 * (1.0 - self.optimised.cycles / self.initial.cycles)


class SoftwareController:
    """Generates update files and measures their application cost."""

    def __init__(
        self,
        config: ArchitectureConfig = DEFAULT_CONFIG,
        engine: UpdateEngine | None = None,
    ):
        self.config = config
        self.engine = engine or UpdateEngine()

    def characterize(
        self, rule_set: RuleSet, use_labels: bool = True, materialize: bool = True
    ) -> tuple[UpdateFile, UpdateFile]:
        """The paper's "two files": (algorithm file, action file)."""
        algorithms = generate_algorithm_updates(
            rule_set,
            use_labels=use_labels,
            config=self.config,
            materialize=materialize,
        )
        actions = generate_action_updates(rule_set, materialize=materialize)
        return algorithms, actions

    def algorithm_update_cost(
        self, rule_set: RuleSet, use_labels: bool = True
    ) -> UpdateCost:
        """Cycles to update the lookup *algorithms* (Fig. 5's quantity)."""
        algorithms, _ = self.characterize(rule_set, use_labels, materialize=False)
        return self.engine.cost(algorithms)

    def full_update_cost(
        self, rule_set: RuleSet, use_labels: bool = True
    ) -> UpdateCost:
        """Cycles to update algorithms and action tables together."""
        algorithms, actions = self.characterize(
            rule_set, use_labels, materialize=False
        )
        return self.engine.cost_of_batch([algorithms, actions])

    def compare(self, rule_set: RuleSet) -> UpdateComparison:
        """Label method vs initial files for one rule set."""
        return UpdateComparison(
            rule_set_name=rule_set.name,
            initial=self.algorithm_update_cost(rule_set, use_labels=False),
            optimised=self.algorithm_update_cost(rule_set, use_labels=True),
        )


def average_saving_percent(comparisons: list[UpdateComparison]) -> float:
    """Mean label-method saving across rule sets (paper: 56.92 %)."""
    if not comparisons:
        return 0.0
    return sum(c.saving_percent for c in comparisons) / len(comparisons)
