"""Derive update files from rule sets.

For every search structure the generator walks the rule set in order and
emits the memory writes its characterisation requires:

- **trie partitions**: writing a prefix touches its controlled-expansion
  records at its level (``2^(boundary - length)`` words) plus any path
  records that do not exist yet at upper levels;
- **LUTs / range structures**: one record per stored value;
- **action tables**: one record per rule (every rule owns an action
  entry, labelled or not).

With the label method (*optimised* files) a repeated field value
contributes nothing — its label already exists.  Without it (*initial*
files) every rule re-emits its values' records, which is precisely the
overhead Fig. 5 quantifies.
"""

from __future__ import annotations

from repro.core.config import ArchitectureConfig, DEFAULT_CONFIG
from repro.filters.partitions import partition_entries, partition_scheme
from repro.filters.rule import RuleSet
from repro.openflow.fields import REGISTRY, MatchMethod
from repro.openflow.match import (
    ExactMatch,
    PrefixMatch,
    RangeMatch,
    WildcardMatch,
)
from repro.update.records import UpdateFile, UpdateRecord


class _TrieShadow:
    """Tracks which trie records exist while generating updates."""

    def __init__(self, strides: tuple[int, ...], key_bits: int):
        self.key_bits = key_bits
        self.boundaries = tuple(sum(strides[: i + 1]) for i in range(len(strides)))
        self.levels: list[set[int]] = [set() for _ in strides]

    def writes_for(self, value: int, length: int) -> list[tuple[str, int]]:
        """(level-name, path) pairs the insert writes, creating new paths."""
        if length == 0:
            return [("default", 0)]
        level = next(
            i for i, boundary in enumerate(self.boundaries) if length <= boundary
        )
        writes: list[tuple[str, int]] = []
        for upper in range(level):
            path = value >> (self.key_bits - self.boundaries[upper])
            if path not in self.levels[upper]:
                self.levels[upper].add(path)
                writes.append((f"L{upper + 1}", path))
        boundary = self.boundaries[level]
        expand_bits = boundary - length
        base = (value >> (self.key_bits - length)) << expand_bits
        for suffix in range(1 << expand_bits):
            path = base | suffix
            self.levels[level].add(path)
            writes.append((f"L{level + 1}", path))
        return writes


def generate_algorithm_updates(
    rule_set: RuleSet,
    use_labels: bool = True,
    config: ArchitectureConfig = DEFAULT_CONFIG,
    materialize: bool = True,
) -> UpdateFile:
    """Build the algorithm update file for a rule set.

    Args:
        rule_set: the rules to characterise.
        use_labels: True for the optimised file (unique values only),
            False for the initial file (every rule re-emits its values).
        config: architecture configuration (partitioning, strides).
        materialize: False keeps exact record counts but discards record
            objects (needed for the >180 k-rule Routing filters, whose
            initial files expand into millions of records).
    """
    flavour = "label" if use_labels else "initial"
    file = UpdateFile(
        name=f"{rule_set.name}-{flavour}-algorithms", materialize=materialize
    )
    allocators: dict[str, dict] = {}
    shadows: dict[str, _TrieShadow] = {}

    for field_name in rule_set.field_names:
        definition = REGISTRY[field_name]
        if definition.method is MatchMethod.PREFIX:
            scheme = partition_scheme(field_name, definition.bits, config.part_bits)
            for rule in rule_set:
                predicate = rule.fields.get(field_name)
                if predicate is None or isinstance(predicate, WildcardMatch):
                    continue
                entries = partition_entries(predicate, scheme)
                for part, entry in zip(scheme, entries):
                    if entry is None:
                        continue
                    labels = allocators.setdefault(part.name, {})
                    known = entry in labels
                    if known and use_labels:
                        continue
                    if not known:
                        labels[entry] = len(labels) + 1
                    label = labels[entry]
                    shadow = shadows.setdefault(
                        part.name, _TrieShadow(config.strides, part.bits)
                    )
                    for level_name, path in shadow.writes_for(*entry):
                        if materialize:
                            file.append(
                                UpdateRecord(
                                    structure=f"{part.name}/{level_name}",
                                    key=(path,),
                                    label=label,
                                )
                            )
                        else:
                            file.count(f"{part.name}/{level_name}")
        else:
            for rule in rule_set:
                predicate = rule.fields.get(field_name)
                if predicate is None or isinstance(predicate, WildcardMatch):
                    continue
                if isinstance(predicate, ExactMatch):
                    key = (predicate.value,)
                elif isinstance(predicate, PrefixMatch):
                    key = (predicate.value, predicate.length)
                elif isinstance(predicate, RangeMatch):
                    if predicate.is_full:
                        continue
                    key = (predicate.low, predicate.high)
                else:
                    raise TypeError(
                        f"unsupported predicate {type(predicate).__name__}"
                    )
                labels = allocators.setdefault(field_name, {})
                known = key in labels
                if known and use_labels:
                    continue
                if not known:
                    labels[key] = len(labels) + 1
                if materialize:
                    file.append(
                        UpdateRecord(structure=field_name, key=key, label=labels[key])
                    )
                else:
                    file.count(field_name)
    return file


def generate_action_updates(rule_set: RuleSet, materialize: bool = True) -> UpdateFile:
    """Build the action-table update file (one record per rule).

    Action entries are per rule in both flavours — the label method
    de-duplicates *field values*, not rules — so this file's size is
    identical with and without labels.
    """
    file = UpdateFile(name=f"{rule_set.name}-actions", materialize=materialize)
    for index, rule in enumerate(rule_set):
        if materialize:
            file.append(
                UpdateRecord(
                    structure="actions", key=(index,), label=rule.action_port
                )
            )
        else:
            file.count("actions")
    return file
