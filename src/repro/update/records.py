"""Update records and update files.

An *update record* is one memory write the controller instructs: a
(structure, address-key, label) triple.  An *update file* is the ordered
batch of records characterising one algorithm structure or table block —
the paper's "optimized algorithm files" (label method applied) and
"initial algorithm files" (without it) differ only in how many records
they contain for the same rule set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterator


@dataclass(frozen=True)
class UpdateRecord:
    """One memory write of the update process."""

    structure: str  # e.g. "eth_dst/lo/L3" or "vlan_vid"
    key: tuple  # structure-specific address (path bits, value, ...)
    label: int

    def describe(self) -> str:
        return f"{self.structure} <- key={self.key} label={self.label}"


@dataclass
class UpdateFile:
    """An ordered batch of update records with per-structure accounting.

    Large batches (the >180 k-rule Routing filters expand into millions of
    records) can be generated with ``materialize=False``: counts are kept
    exactly but the record objects themselves are not retained, so cycle
    accounting stays O(1) memory.
    """

    name: str
    materialize: bool = True
    records: list[UpdateRecord] = field(default_factory=list)
    _count: int = 0
    _structure_counts: dict[str, int] = field(default_factory=dict)

    def append(self, record: UpdateRecord) -> None:
        self._account(record.structure)
        if self.materialize:
            self.records.append(record)

    def count(self, structure: str, n: int = 1) -> None:
        """Account ``n`` writes to ``structure`` without record objects."""
        for _ in range(n):
            self._account(structure)

    def _account(self, structure: str) -> None:
        self._count += 1
        self._structure_counts[structure] = (
            self._structure_counts.get(structure, 0) + 1
        )

    def extend(self, records: Iterator[UpdateRecord] | list[UpdateRecord]) -> None:
        for record in records:
            self.append(record)

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[UpdateRecord]:
        if not self.materialize and self._count:
            raise ValueError(
                f"update file {self.name!r} was generated count-only"
            )
        return iter(self.records)

    def per_structure(self) -> dict[str, int]:
        """Record counts grouped by target structure."""
        return dict(self._structure_counts)

    def merged(self, other: UpdateFile, name: str | None = None) -> UpdateFile:
        combined = UpdateFile(
            name=name or f"{self.name}+{other.name}",
            materialize=self.materialize and other.materialize,
        )
        if combined.materialize:
            combined.records = list(self.records) + list(other.records)
        combined._count = self._count + other._count
        merged_counts = dict(self._structure_counts)
        for structure, count in other._structure_counts.items():
            merged_counts[structure] = merged_counts.get(structure, 0) + count
        combined._structure_counts = merged_counts
        return combined
