"""The update cost engine.

Paper Section V.B fixes the cost model: each update record takes two
clock cycles — "the index used to address the algorithm data is
calculated in the first clock cycle and stored in the second clock
cycle.  The same process is performed for both algorithm and lookup
table update."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.update.records import UpdateFile

#: Clock cycles per update record (address calculation + store).
CYCLES_PER_UPDATE = 2


@dataclass(frozen=True)
class UpdateCost:
    """Cycle cost of applying one update file."""

    file_name: str
    records: int
    cycles: int

    def duration_us(self, clock_mhz: float) -> float:
        """Wall time at a given update clock (microseconds)."""
        if clock_mhz <= 0:
            raise ValueError("clock frequency must be positive")
        return self.cycles / clock_mhz


class UpdateEngine:
    """Charges the fixed per-record cycle cost to update files."""

    def __init__(self, cycles_per_update: int = CYCLES_PER_UPDATE):
        if cycles_per_update <= 0:
            raise ValueError("cycles_per_update must be positive")
        self.cycles_per_update = cycles_per_update

    def cost(self, file: UpdateFile) -> UpdateCost:
        return UpdateCost(
            file_name=file.name,
            records=len(file),
            cycles=len(file) * self.cycles_per_update,
        )

    def cost_of_batch(self, files: list[UpdateFile]) -> UpdateCost:
        records = sum(len(f) for f in files)
        return UpdateCost(
            file_name="+".join(f.name for f in files),
            records=records,
            cycles=records * self.cycles_per_update,
        )
