"""Update-process simulation (paper Section V.B).

"In order to simulate the Software Controller platform, two files are
generated with the information to characterize each algorithm and table
block. ... On average, two clock cycles are required for each update.
The update data is composed of the label and the information for each
lookup algorithm structure or table.  The index used to address the
algorithm data is calculated in the first clock cycle and stored in the
second clock cycle."

- :mod:`repro.update.records` — update records and files;
- :mod:`repro.update.generator` — derive algorithm/action update files
  from a rule set, with (optimised) or without (initial) the label
  method;
- :mod:`repro.update.engine` — the 2-cycles-per-record cost engine;
- :mod:`repro.update.controller_sim` — the software-controller facade
  used by the Fig. 5 experiment.
"""

from repro.update.engine import UpdateCost, UpdateEngine, CYCLES_PER_UPDATE
from repro.update.generator import (
    generate_action_updates,
    generate_algorithm_updates,
)
from repro.update.records import UpdateFile, UpdateRecord
from repro.update.controller_sim import SoftwareController, UpdateComparison

__all__ = [
    "CYCLES_PER_UPDATE",
    "SoftwareController",
    "UpdateComparison",
    "UpdateCost",
    "UpdateEngine",
    "UpdateFile",
    "UpdateRecord",
    "generate_action_updates",
    "generate_algorithm_updates",
]
