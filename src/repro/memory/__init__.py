"""The embedded-memory cost model (paper Section V.A).

Turns built search structures into bit-accurate memory requirements:

- :mod:`repro.memory.node_format` — sizes the trie record word ("child
  pointer, the label and a flag bit"), with per-level pointer widths
  "determined by the worst case (lower trie)";
- :mod:`repro.memory.cost_model` — per-level, per-structure and
  per-table Kbit accounting under sparse or full-array allocation;
- :mod:`repro.memory.fpga` — Stratix V M20K block-RAM rounding, since
  "each lookup algorithm is implemented in a separate memory block";
- :mod:`repro.memory.report` — whole-architecture reports (the
  prototype's "5 Mb of total memory" breakdown).
"""

from repro.memory.cost_model import (
    MemoryModel,
    TrieCost,
    TrieLevelCost,
    index_cost,
    lut_cost,
    range_cost,
    trie_group_cost,
)
from repro.memory.fpga import M20K_BITS, BlockRamPlan, StratixVModel
from repro.memory.node_format import TrieNodeFormat, size_node_format
from repro.memory.provisioning import (
    ProvisionedStructure,
    ProvisioningPlan,
    provision_filters,
    provision_prototype,
)
from repro.memory.report import (
    ArchitectureMemoryReport,
    StructureCost,
    TableMemoryReport,
    architecture_memory_report,
    table_memory_report,
)

__all__ = [
    "ArchitectureMemoryReport",
    "BlockRamPlan",
    "M20K_BITS",
    "MemoryModel",
    "ProvisionedStructure",
    "ProvisioningPlan",
    "provision_filters",
    "provision_prototype",
    "StratixVModel",
    "StructureCost",
    "TableMemoryReport",
    "TrieCost",
    "TrieLevelCost",
    "TrieNodeFormat",
    "architecture_memory_report",
    "index_cost",
    "lut_cost",
    "range_cost",
    "size_node_format",
    "table_memory_report",
    "trie_group_cost",
]
