"""Stratix V embedded-memory model.

The paper's prototype is synthesised on a Stratix V
(5SGXMB6R3F43C4), whose embedded memory is organised as **M20K** blocks:
20 480 bits each, configurable from 512 x 40 down to 16K x 1.  "Each
lookup algorithm is implemented in a separate memory block, and each node
level of the multi-bit trie is searched in a different pipeline stage"
(Section V.A) — so every level/structure rounds up to whole blocks of its
own.

This module turns (depth, width) memory requirements into block counts
and utilisation, which the prototype experiment reports next to the raw
bit totals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: One M20K block.
M20K_BITS = 20 * 1024
#: Widest M20K port configuration is 40 bits x 512 words.
M20K_MAX_WIDTH = 40
M20K_MIN_DEPTH = 512

#: Total M20K blocks on the 5SGXMB6R3F43C4 device (Stratix V GX B6).
DEVICE_M20K_BLOCKS = 2640


@dataclass(frozen=True)
class BlockRamPlan:
    """Block allocation for one logical memory."""

    name: str
    depth: int  # records
    width: int  # bits per record
    blocks: int

    @property
    def capacity_bits(self) -> int:
        return self.blocks * M20K_BITS

    @property
    def used_bits(self) -> int:
        return self.depth * self.width

    @property
    def utilisation(self) -> float:
        return self.used_bits / self.capacity_bits if self.blocks else 0.0


def plan_memory(name: str, depth: int, width: int) -> BlockRamPlan:
    """Allocate M20K blocks for a ``depth x width`` memory.

    Wide records are striped across ``ceil(width / 40)`` block columns;
    each column then needs ``ceil(depth / depth_per_block)`` blocks where
    the depth per block follows the configured column width (an M20K
    yields 512 words at 40 bits, 1024 at 20, ... 16K at 1 — i.e. depth
    scales as ``20K / power-of-two width``).
    """
    if depth <= 0 or width <= 0:
        return BlockRamPlan(name=name, depth=depth, width=width, blocks=0)
    columns = math.ceil(width / M20K_MAX_WIDTH)
    column_width = math.ceil(width / columns)
    # Effective configured width is the next power-of-two-ish port width
    # (40, 20, 10, 5 ... for M20K); model it as 40 / 2^k >= column_width.
    configured_width = M20K_MAX_WIDTH
    while configured_width / 2 >= column_width:
        configured_width /= 2
    depth_per_block = int(M20K_BITS / configured_width)
    blocks_per_column = math.ceil(depth / depth_per_block)
    return BlockRamPlan(
        name=name, depth=depth, width=width, blocks=columns * blocks_per_column
    )


@dataclass
class StratixVModel:
    """Device-level accounting across many planned memories."""

    plans: list[BlockRamPlan]

    @property
    def total_blocks(self) -> int:
        return sum(plan.blocks for plan in self.plans)

    @property
    def total_capacity_bits(self) -> int:
        return self.total_blocks * M20K_BITS

    @property
    def total_used_bits(self) -> int:
        return sum(plan.used_bits for plan in self.plans)

    @property
    def device_fraction(self) -> float:
        """Fraction of the 5SGXMB6R3F43C4's M20K blocks consumed."""
        return self.total_blocks / DEVICE_M20K_BLOCKS

    def fits_device(self) -> bool:
        return self.total_blocks <= DEVICE_M20K_BLOCKS
