"""Worst-case memory provisioning across many filter sets.

An FPGA bitstream fixes its memory sizes at synthesis time, so a real
deployment must provision each structure for the *worst case across every
filter set it may serve* — exactly how the paper dimensions its LUTs
("209 values must be addressed ... based on the worst case of unique
fields").  This module computes that envelope: for each structure
(per trie level, LUT, index stage, action table) the maximum occupancy
over a collection of rule sets, and the resulting provisioned bits and
M20K blocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Mapping

from repro.core.builder import build_prototype
from repro.filters.rule import RuleSet
from repro.memory.cost_model import MemoryModel
from repro.memory.fpga import BlockRamPlan, StratixVModel, plan_memory
from repro.memory.report import architecture_memory_report
from repro.util.units import mbits


@dataclass(frozen=True)
class ProvisionedStructure:
    """Worst-case envelope of one structure across filter sets."""

    name: str
    kind: str
    max_entries: int
    max_bits: int
    sizing_filter: str  # which filter set forced the maximum


@dataclass
class ProvisioningPlan:
    """The provisioned prototype: every structure at its envelope."""

    structures: list[ProvisionedStructure]

    @property
    def total_bits(self) -> int:
        return sum(s.max_bits for s in self.structures)

    @property
    def total_mbits(self) -> float:
        return mbits(self.total_bits)

    def block_ram(self) -> StratixVModel:
        plans: list[BlockRamPlan] = []
        for structure in self.structures:
            if structure.max_entries and structure.max_bits:
                width = max(1, structure.max_bits // structure.max_entries)
                plans.append(
                    plan_memory(structure.name, structure.max_entries, width)
                )
        return StratixVModel(plans=plans)

    def sizing_filters(self) -> dict[str, int]:
        """How often each filter set sets a structure's worst case."""
        counts: dict[str, int] = {}
        for structure in self.structures:
            counts[structure.sizing_filter] = (
                counts.get(structure.sizing_filter, 0) + 1
            )
        return counts


def provision_prototype(
    filter_pairs: Mapping[str, tuple[RuleSet, RuleSet]],
    model: MemoryModel = MemoryModel.FULL_ARRAY,
) -> ProvisioningPlan:
    """Provision the 4-table prototype for a set of (MAC, Routing) pairs.

    Args:
        filter_pairs: filter name -> (MAC rule set, Routing rule set).
        model: trie allocation model used for sizing.

    Returns a plan whose per-structure sizes are the maxima over all
    pairs — the memory a single synthesised prototype needs to be able to
    load any of them.
    """
    if not filter_pairs:
        raise ValueError("cannot provision for zero filter sets")
    envelope: dict[str, ProvisionedStructure] = {}
    for filter_name, (mac, routing) in filter_pairs.items():
        architecture = build_prototype(mac, routing)
        report = architecture_memory_report(architecture, model)
        for table_report in report.tables:
            for structure in table_report.structures:
                key = f"t{table_report.table_id}/{structure.name}"
                current = envelope.get(key)
                if current is None or structure.bits > current.max_bits:
                    envelope[key] = ProvisionedStructure(
                        name=key,
                        kind=structure.kind,
                        max_entries=structure.entries,
                        max_bits=structure.bits,
                        sizing_filter=filter_name,
                    )
    return ProvisioningPlan(structures=sorted(envelope.values(), key=lambda s: s.name))


def provision_filters(
    names: Iterable[str],
    model: MemoryModel = MemoryModel.FULL_ARRAY,
) -> ProvisioningPlan:
    """Provision across named backbone filters (MAC+Routing per router)."""
    from repro.filters.synthetic import mac_set, routing_set

    pairs = {name: (mac_set(name), routing_set(name)) for name in names}
    return provision_prototype(pairs, model)
