"""Whole-table and whole-architecture memory reports.

The prototype experiment needs the paper's Section V.A inventory: per
lookup table, the memory of every engine structure (LUTs, trie levels),
the index-calculation tables and the action tables; per architecture,
the grand total ("5 Mb of total memory", of which ~2 Mb is the MBTs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.architecture import MultiTableLookupArchitecture
from repro.core.lookup_table import OpenFlowLookupTable
from repro.memory.cost_model import (
    MemoryModel,
    TrieCost,
    action_table_cost,
    action_table_free_cost,
    index_cost,
    lut_cost,
    range_cost,
    trie_group_cost,
)
from repro.memory.fpga import BlockRamPlan, StratixVModel, plan_memory
from repro.memory.node_format import TrieNodeFormat
from repro.util.tables import TextTable
from repro.util.units import format_bits, kbits, mbits


@dataclass(frozen=True)
class StructureCost:
    """One structure's contribution to a table's memory."""

    name: str
    kind: str  # "lut" | "trie" | "range" | "index" | "actions"
    entries: int
    bits: int

    @property
    def kbits(self) -> float:
        return kbits(self.bits)


@dataclass
class TableMemoryReport:
    """Memory breakdown of one lookup table."""

    table_id: int
    structures: list[StructureCost] = field(default_factory=list)
    trie_costs: dict[str, TrieCost] = field(default_factory=dict)
    node_format: TrieNodeFormat | None = None
    #: Peak free-list depth of the action table (slots, not bits); a
    #: churn-headroom line item, *not* part of :attr:`total_bits` —
    #: current free slots are already costed by "actions (free)".
    action_free_high_water: int = 0
    action_free_high_water_bits: int = 0
    #: Aggregate per-entry flow-stats counters over the table's live
    #: entries (packets/bytes) — the monitoring substrate the sharded
    #: runtime's stats-return protocol keeps exact.  Reported alongside
    #: the memory lines, excluded from the totals (counters, not bits).
    flow_packets: int = 0
    flow_bytes: int = 0
    live_entries: int = 0

    @property
    def total_bits(self) -> int:
        return sum(s.bits for s in self.structures)

    @property
    def trie_bits(self) -> int:
        return sum(s.bits for s in self.structures if s.kind == "trie")

    def block_ram_plans(self) -> list[BlockRamPlan]:
        """One memory block per structure / trie level, as in the paper."""
        plans: list[BlockRamPlan] = []
        for cost in self.trie_costs.values():
            for level in cost.levels:
                plans.append(
                    plan_memory(
                        f"t{self.table_id}/{cost.name}/L{level.level}",
                        depth=level.records,
                        width=level.record_bits,
                    )
                )
        for structure in self.structures:
            if structure.kind == "trie":
                continue  # already planned per level above
            if structure.entries and structure.bits:
                width = max(1, structure.bits // max(structure.entries, 1))
                plans.append(
                    plan_memory(
                        f"t{self.table_id}/{structure.name}",
                        depth=structure.entries,
                        width=width,
                    )
                )
        return plans


def table_memory_report(
    table: OpenFlowLookupTable,
    model: MemoryModel = MemoryModel.SPARSE,
) -> TableMemoryReport:
    """Compute the full memory breakdown of one lookup table."""
    report = TableMemoryReport(table_id=table.table_id)

    tries = {name: engine.trie for name, engine in table.tries().items()}
    if tries:
        trie_costs, node_format = trie_group_cost(tries, model)
        report.trie_costs = trie_costs
        report.node_format = node_format
        for name, cost in trie_costs.items():
            report.structures.append(
                StructureCost(
                    name=name,
                    kind="trie",
                    entries=sum(level.records for level in cost.levels),
                    bits=cost.total_bits,
                )
            )
    for name, engine in table.luts().items():
        size = lut_cost(engine.lut)
        report.structures.append(
            StructureCost(name=name, kind="lut", entries=size.entries, bits=size.bits)
        )
    for name, engine in table.range_engines().items():
        size = range_cost(engine.ranges)
        report.structures.append(
            StructureCost(name=name, kind="range", entries=size.entries, bits=size.bits)
        )
    index_size = index_cost(table.index, table.actions.index_bits)
    report.structures.append(
        StructureCost(
            name="index", kind="index", entries=index_size.entries, bits=index_size.bits
        )
    )
    actions_size = action_table_cost(table.actions)
    report.structures.append(
        StructureCost(
            name="actions",
            kind="actions",
            entries=actions_size.entries,
            bits=actions_size.bits,
        )
    )
    # Freed slots (from rule churn, awaiting reuse) still occupy the
    # hardware array; report them as their own line so churn-induced
    # overhead is visible rather than folded into the live entries.
    free_size = action_table_free_cost(table.actions)
    if free_size.entries:
        report.structures.append(
            StructureCost(
                name="actions (free)",
                kind="actions",
                entries=free_size.entries,
                bits=free_size.bits,
            )
        )
    # Free-list high-water mark (ROADMAP: compaction metrics under long
    # churn): the worst transient slot waste, reported as its own line
    # but excluded from the total — those slots are costed above when
    # still free, and live again when reused.
    report.action_free_high_water = table.actions.free_high_water
    report.action_free_high_water_bits = (
        table.actions.free_high_water * table.actions.entry_bits
    )
    for entry in table:
        report.live_entries += 1
        report.flow_packets += entry.stats.packet_count
        report.flow_bytes += entry.stats.byte_count
    return report


@dataclass
class ArchitectureMemoryReport:
    """Memory breakdown of a whole architecture."""

    tables: list[TableMemoryReport]

    @property
    def total_bits(self) -> int:
        return sum(t.total_bits for t in self.tables)

    @property
    def total_mbits(self) -> float:
        return mbits(self.total_bits)

    @property
    def trie_bits(self) -> int:
        return sum(t.trie_bits for t in self.tables)

    @property
    def trie_mbits(self) -> float:
        return mbits(self.trie_bits)

    def block_ram(self) -> StratixVModel:
        plans: list[BlockRamPlan] = []
        for table in self.tables:
            plans.extend(table.block_ram_plans())
        return StratixVModel(plans=plans)

    def to_table(self) -> TextTable:
        text = TextTable(
            headers=["table", "structure", "kind", "entries", "memory"],
            title="Architecture memory breakdown",
        )
        for table in self.tables:
            for structure in table.structures:
                text.add_row(
                    [
                        table.table_id,
                        structure.name,
                        structure.kind,
                        structure.entries,
                        format_bits(structure.bits),
                    ]
                )
            if table.action_free_high_water:
                text.add_row(
                    [
                        table.table_id,
                        "actions (free hwm)",
                        "peak",
                        table.action_free_high_water,
                        format_bits(table.action_free_high_water_bits),
                    ]
                )
            if table.flow_packets:
                text.add_row(
                    [
                        table.table_id,
                        "flow counters",
                        "stats",
                        table.live_entries,
                        f"{table.flow_packets} pkts",
                    ]
                )
        text.add_row(["-", "TOTAL", "-", "-", format_bits(self.total_bits)])
        return text


def architecture_memory_report(
    architecture: MultiTableLookupArchitecture,
    model: MemoryModel = MemoryModel.SPARSE,
) -> ArchitectureMemoryReport:
    """Memory report over every table of an architecture."""
    return ArchitectureMemoryReport(
        tables=[
            table_memory_report(table, model)
            for table in architecture.lookup_tables
        ]
    )


@dataclass(frozen=True)
class SharedSegmentCost:
    """One structure kind's share of a sealed shared-rule block."""

    table_id: int
    kind: str  # "trie" | "lut" | "range" | "index" | "actions" | "entries"
    arrays: int
    nbytes: int


#: Path component -> structure kind for sealed segment keys, which look
#: like ``t0/ipv4_dst:p1/trie/len24/values`` or ``t0/index/final``.
_SEGMENT_KINDS = ("trie", "lut", "range", "index", "actions", "entries")


@dataclass
class SharedStateMemoryReport:
    """Byte inventory of one sealed generation of shared rule state.

    Built from a :class:`~repro.runtime.rulestate.SharedRuleLayout`'s
    segment table alone — no attach needed — and grouped by the same
    structure kinds as :class:`TableMemoryReport`, so the paper's
    bit-cost model (what the hardware would spend) sits next to what
    the runtime actually mapped into ``/dev/shm``.  The ``entries``
    kind is the pickled flow-entry blob: pure software-runtime state
    (rehydration for stats and thaw) with no hardware counterpart.
    See docs/memory-model.md for how to read the two side by side.
    """

    costs: list[SharedSegmentCost]

    @property
    def total_nbytes(self) -> int:
        return sum(cost.nbytes for cost in self.costs)

    def to_table(self) -> TextTable:
        text = TextTable(
            headers=["table", "kind", "arrays", "memory"],
            title="Sealed shared-state segments",
        )
        for cost in self.costs:
            text.add_row(
                [
                    cost.table_id,
                    cost.kind,
                    cost.arrays,
                    format_bits(cost.nbytes * 8),
                ]
            )
        text.add_row(["-", "TOTAL", "-", format_bits(self.total_nbytes * 8)])
        return text


def shared_state_report(layout) -> SharedStateMemoryReport:
    """Group a sealed layout's segments into per-table structure costs.

    ``layout`` is duck-typed (anything with a ``segments`` tuple of
    :class:`~repro.runtime.transport.Segment`), so this module stays
    import-independent of the runtime layer.
    """
    import numpy as np

    totals: dict[tuple[int, str], list[int]] = {}
    for segment in layout.segments:
        parts = segment.key.split("/")
        table_id = int(parts[0].lstrip("t"))
        kind = next((p for p in parts[1:] if p in _SEGMENT_KINDS), parts[1])
        bucket = totals.setdefault((table_id, kind), [0, 0])
        bucket[0] += 1
        bucket[1] += segment.count * np.dtype(segment.dtype).itemsize
    return SharedStateMemoryReport(
        costs=[
            SharedSegmentCost(
                table_id=table_id, kind=kind, arrays=arrays, nbytes=nbytes
            )
            for (table_id, kind), (arrays, nbytes) in sorted(totals.items())
        ]
    )
