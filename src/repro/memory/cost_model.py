"""Per-structure memory costs.

The unit of account is the raw bit; presentation layers convert to
Kbits/Mbits.  Two allocation models are supported for tries:

- ``SPARSE`` (default): only stored records occupy memory — the layout
  implied by the paper's "number of stored nodes" figures;
- ``FULL_ARRAY``: every allocated node is a complete ``2^stride`` record
  array (the classic multi-bit-trie layout); kept as an ablation to show
  what sparse storage saves.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from collections.abc import Mapping

from repro.algorithms.base import StructureSize
from repro.algorithms.exact_lut import ExactMatchLut
from repro.algorithms.multibit_trie import MultibitTrie
from repro.algorithms.range_lookup import RangeLookup
from repro.core.action_table import ActionTable
from repro.core.index import IndexCalculator
from repro.memory.node_format import TrieNodeFormat, size_node_format
from repro.util.bits import bits_needed
from repro.util.units import kbits


class MemoryModel(enum.Enum):
    """Trie record allocation model."""

    SPARSE = "sparse"
    FULL_ARRAY = "full-array"


@dataclass(frozen=True)
class TrieLevelCost:
    """Memory of one trie level (one pipeline stage / memory block)."""

    level: int  # 1-based (paper's L1/L2/L3)
    records: int
    record_bits: int

    @property
    def total_bits(self) -> int:
        return self.records * self.record_bits

    @property
    def total_kbits(self) -> float:
        return kbits(self.total_bits)


@dataclass(frozen=True)
class TrieCost:
    """Memory of one partition trie."""

    name: str
    levels: tuple[TrieLevelCost, ...]
    stored_nodes: int

    @property
    def total_bits(self) -> int:
        return sum(level.total_bits for level in self.levels)

    @property
    def total_kbits(self) -> float:
        return kbits(self.total_bits)


def trie_group_cost(
    tries: Mapping[str, MultibitTrie],
    model: MemoryModel = MemoryModel.SPARSE,
) -> tuple[dict[str, TrieCost], TrieNodeFormat]:
    """Cost every trie of one group under a shared worst-case record format.

    Returns per-trie costs plus the shared :class:`TrieNodeFormat`, so
    callers can report the record widths alongside the totals.
    """
    if not tries:
        raise ValueError("cannot cost an empty trie group")
    node_format = size_node_format(tries.values())
    costs: dict[str, TrieCost] = {}
    for name, trie in tries.items():
        if model is MemoryModel.SPARSE:
            record_counts = [stats.records for stats in trie.level_stats()]
        else:
            record_counts = trie.full_array_records()
        levels = tuple(
            TrieLevelCost(
                level=i + 1,
                records=count,
                record_bits=node_format.record_bits(i + 1),
            )
            for i, count in enumerate(record_counts)
        )
        costs[name] = TrieCost(
            name=name, levels=levels, stored_nodes=trie.stored_nodes()
        )
    return costs, node_format


def lut_cost(lut: ExactMatchLut, label_bits: int | None = None) -> StructureSize:
    """Hash-LUT memory (provisioned slots x key+label width)."""
    return lut.size(label_bits)


def range_cost(ranges: RangeLookup, label_bits: int | None = None) -> StructureSize:
    """Elementary-interval structure memory."""
    return ranges.size(label_bits)


def index_cost(index: IndexCalculator, action_index_bits: int) -> StructureSize:
    """Aggregation network + final index table memory.

    Stage *k* stores truncated label tuples of width ``sum(label bits of
    partitions 0..k)``; the final stage adds the action-table index.
    Single-partition tables need no aggregation beyond the final stage.
    """
    label_bits = index.observed_label_bits()
    sizes = index.aggregation_sizes()
    total_bits = 0
    entries = 0
    for k, stage_entries in enumerate(sizes):
        key_bits = sum(label_bits[: k + 1])
        payload = action_index_bits if k == len(sizes) - 1 else 1
        total_bits += stage_entries * (key_bits + payload)
        entries += stage_entries
    return StructureSize(entries=entries, bits=total_bits)


def action_table_cost(actions: ActionTable) -> StructureSize:
    """Live action-table memory (entries x fixed instruction encoding).

    Free-listed slots (allocated by a past rule, awaiting reuse) are
    accounted separately via :func:`action_table_free_cost`.
    """
    return StructureSize(entries=len(actions), bits=actions.live_bits)


def action_table_free_cost(actions: ActionTable) -> StructureSize:
    """Memory held by freed (reusable) action-table slots."""
    free = actions.free_slots
    return StructureSize(entries=free, bits=free * actions.entry_bits)


def metadata_label_bits(index: IndexCalculator) -> int:
    """Width of a metadata label produced by a per-field split table."""
    return bits_needed(len(index) + 1)
