"""Trie record (node) format sizing.

Paper, Section V.A: "The trie node data is composed of the child pointer,
the label and a flag bit.  However, each level node requires different
child pointer sizes.  This size is determined by the worst case (lower
trie)."

A record word at level *j* is::

    | flag (1) | label (label_bits) | child pointer (pointer_bits[j]) |

- ``label_bits`` is shared by the whole trie *group* (the 2-3 partition
  tries of one field), sized for the largest label any of them stores;
- ``pointer_bits[j]`` addresses records of level *j+1*, sized for the
  worst-case (largest) level *j+1* across the group; the deepest level
  has no pointer.

With the default (5, 5, 6) strides and the paper's worst-case MAC filter,
L1 holds at most 2^5 = 32 records — the paper's "maximum stored nodes in
L1 are 32 and the memory consumption is less than 1 Kbit (832 bits)"
corresponds to a 26-bit record at L1.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable

from repro.algorithms.multibit_trie import MultibitTrie
from repro.util.bits import bits_needed

FLAG_BITS = 1


@dataclass(frozen=True)
class TrieNodeFormat:
    """Record widths for one trie group."""

    label_bits: int
    pointer_bits: tuple[int, ...]  # one per level; deepest is 0

    def record_bits(self, level: int) -> int:
        """Width of a record word at 1-based level ``level``."""
        if not 1 <= level <= len(self.pointer_bits):
            raise ValueError(
                f"level {level} outside 1..{len(self.pointer_bits)}"
            )
        return FLAG_BITS + self.label_bits + self.pointer_bits[level - 1]

    @property
    def level_count(self) -> int:
        return len(self.pointer_bits)


def size_node_format(tries: Iterable[MultibitTrie]) -> TrieNodeFormat:
    """Size the shared record format of a trie group from its worst case.

    All tries must share a stride distribution (they do by construction:
    one field's partitions use one configuration).
    """
    tries = list(tries)
    if not tries:
        raise ValueError("cannot size a format for zero tries")
    level_count = tries[0].level_count
    for trie in tries:
        if trie.level_count != level_count:
            raise ValueError("tries of one group must share their strides")

    label_bits = max(1, bits_needed(max(t.max_label() for t in tries) + 1))
    pointer_bits = []
    for level in range(level_count):
        if level == level_count - 1:
            pointer_bits.append(0)
            continue
        worst_next = max(t.level_stats()[level + 1].records for t in tries)
        pointer_bits.append(max(1, bits_needed(max(worst_next, 1))))
    return TrieNodeFormat(label_bits=label_bits, pointer_bits=tuple(pointer_bits))
