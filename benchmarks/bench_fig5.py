"""Fig. 5 bench — update-file generation and the label-method saving.

Benchmarks the software-controller characterisation with and without the
label method (the two flavours Fig. 5 compares) and regenerates the
full figure, asserting the saving lands in the paper's regime
(paper average: 56.92 %).
"""

from repro.experiments.registry import run_experiment
from repro.update.controller_sim import SoftwareController
from repro.update.generator import generate_algorithm_updates


def test_fig5_regeneration(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("fig5", write_csv=False), rounds=1, iterations=1
    )
    print(result.render())
    assert result.headline["all_filters_save"] == 1.0
    assert 45.0 <= result.headline["average_saving_percent"] <= 75.0


def test_generate_label_file_gozb(benchmark, mac_gozb):
    file = benchmark(
        generate_algorithm_updates, mac_gozb, True, materialize=False
    )
    assert len(file) > 0


def test_generate_initial_file_gozb(benchmark, mac_gozb):
    file = benchmark(
        generate_algorithm_updates, mac_gozb, False, materialize=False
    )
    label_file = generate_algorithm_updates(mac_gozb, True, materialize=False)
    assert len(file) > len(label_file)


def test_update_comparison_single_filter(benchmark, routing_yoza):
    controller = SoftwareController()
    comparison = benchmark.pedantic(
        controller.compare, args=(routing_yoza,), rounds=2, iterations=1
    )
    assert comparison.optimised.cycles < comparison.initial.cycles
    assert comparison.initial.cycles == comparison.initial.records * 2
