"""Fig. 3 bench — per-level memory of the Ethernet lower trie."""

from repro.experiments.common import mac_eth_tries
from repro.experiments.registry import run_experiment
from repro.memory.cost_model import MemoryModel, trie_group_cost


def test_fig3_regeneration(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("fig3", write_csv=False), rounds=1, iterations=1
    )
    print(result.render())
    assert result.headline["max_is_gozb"] == 1.0
    assert result.headline["max_l1_records"] <= 32
    assert result.headline["max_l1_bits"] <= 1024
    # Paper: 983.7 Kbits for gozb; full-array model must land in regime.
    assert 500 <= result.headline["max_total_kbits_full_array"] <= 2000


def test_cost_model_throughput(benchmark):
    tries = mac_eth_tries("gozb")

    def cost_both_models():
        sparse, _ = trie_group_cost(tries, MemoryModel.SPARSE)
        full, _ = trie_group_cost(tries, MemoryModel.FULL_ARRAY)
        return sparse, full

    sparse, full = benchmark(cost_both_models)
    assert full["eth_dst/lo"].total_bits > sparse["eth_dst/lo"].total_bits
