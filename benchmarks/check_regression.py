"""Perf-regression gate over the committed throughput record.

Compares the ``speedups`` section of a freshly measured
``BENCH_throughput.smoke.json`` (the CI smoke run) against the committed
``BENCH_throughput.json`` (the full-run perf trajectory) and fails when
any ratio dropped below its tolerance band.

Smoke runs use tiny traces, so their absolute ratios sit well below the
full-run ones (fixed per-batch overheads dominate) and CI runners add
scheduler noise on top; the bands encode both.  A *tolerance* is the
fraction of the committed baseline the fresh measurement must still
reach: ``current >= tolerance * baseline``.  The point of the gate is
not precision — it is catching the change that turns a 22x cache win
into 2x, or the pipelined transport into a slowdown, before it merges.

Runnable locally exactly as CI runs it::

    PYTHONPATH=src REPRO_BENCH_SMOKE=1 python -m pytest \
        benchmarks/bench_throughput.py -q --benchmark-disable
    python benchmarks/check_regression.py

or against a full measurement (``--tolerance 0.8``, say) to compare two
real runs.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
BASELINE_PATH = REPO_ROOT / "BENCH_throughput.json"
CURRENT_PATH = REPO_ROOT / "BENCH_throughput.smoke.json"

#: Fraction of the committed baseline a smoke measurement must reach,
#: per speedup key.  Cache-hierarchy ratios shrink hardest in smoke mode
#: (tiny traces never amortise the build/warm-up cost), transport-vs-
#: transport ratios are the steadiest; anything unlisted uses
#: DEFAULT_TOLERANCE.
TOLERANCES = {
    "cached_batch_vs_decomposition": 0.25,
    "megaflow_vs_batch_uniform_wide": 0.25,
    "sharded_vs_single": 0.3,
    "shm_vs_pickle_small_batch": 0.5,
    "pipelined_vs_serial_shm_small_batch": 0.5,
    # Columnar-vs-dict ratios collapse hardest in smoke mode: the tiny
    # traces are cold-cache dominated, and the cold path (table
    # resolution) is shared by both sides.
    "columnar_vs_dict_cached_batch": 0.2,
    "columnar_vs_dict_megaflow_uniform_wide": 0.3,
    # Swept-vs-frozen hovers near 1.0 (the lifecycle tax is a few
    # percent), so the absolute floor below does the real gating.
    "timeout_churn_swept_vs_frozen": 0.5,
}
DEFAULT_TOLERANCE = 0.3

#: Absolute floors for transport-vs-transport ratios, whose baselines
#: hover near 1.0 — there a *fraction* of baseline is vacuous (half of
#: 1.07x would wave a 1.8x slowdown through).  The final floor per key
#: is max(tolerance * baseline, absolute floor): the absolute side is
#: what actually catches "the pipelined transport became a slowdown",
#: set below the observed smoke-mode values with margin for CI-runner
#: noise.
ABSOLUTE_FLOORS = {
    # Re-floored when Match.__reduce__ stopped pickling the field
    # registry per match: pickled replies shrank ~14x, so the pickle
    # transport's small-batch baseline sped up and parity (not 1.2x)
    # is now the honest expectation — smoke-mode observations sit at
    # 0.6-1.1x on one core.  0.5 still catches shm becoming a real
    # slowdown.
    "shm_vs_pickle_small_batch": 0.5,
    "pipelined_vs_serial_shm_small_batch": 0.8,
    "columnar_vs_dict_cached_batch": 0.6,
    "columnar_vs_dict_megaflow_uniform_wide": 0.6,
    # Baseline ~1.0: sweeps ride along nearly for free.  The floor is
    # what catches "the expiry sweep fell off the vectorized path and
    # now dominates the replay".
    "timeout_churn_swept_vs_frozen": 0.5,
}

#: Speedup keys whose ratio depends on how many cores the host has
#: (process fan-out measures scheduler contention on one core and real
#: parallelism on many).  Each measured ratio is stamped with the
#: ``cpu_count`` it was taken on (the bench writes a ``speedup_cpus``
#: section next to ``speedups``); when the baseline stamp and the
#: current host disagree, these keys are *skipped* instead of gated —
#: a multi-core CI runner must not be held to (or excused by) a
#: single-core baseline like the committed ``sharded_vs_single: 0.24``.
CPU_SENSITIVE_KEYS = frozenset(
    {
        "sharded_vs_single",
        "shm_vs_pickle_small_batch",
        "pipelined_vs_serial_shm_small_batch",
    }
)


#: Fraction of the baseline p99 the current streaming p99 may *grow*
#: to before the gate fails: ``current_p99 <= P99_TOLERANCE *
#: baseline_p99``.  Latencies are in virtual ticks, so the band is not
#: absorbing CI-runner noise (there is none — same seed, same schedule,
#: same ticks); it absorbs deliberate retunes of batch formation that
#: shift the tail a little without being regressions.
P99_TOLERANCE = 1.5


@dataclass(frozen=True)
class Check:
    """Outcome of one speedup-key comparison."""

    key: str
    baseline: float
    current: float
    floor: float

    @property
    def ok(self) -> bool:
        return self.current >= self.floor


def load_speedups(path: Path) -> dict[str, float]:
    speedups, _ = load_record(path)
    return speedups


def load_record(path: Path) -> tuple[dict[str, float], dict[str, int]]:
    """The ``speedups`` section plus each key's cpu stamp.

    Per-key stamps come from the ``speedup_cpus`` section when present
    (a merged record can carry ratios measured on different hosts),
    falling back to the record's top-level ``cpu_count``.
    """
    record = json.loads(path.read_text())
    speedups = record.get("speedups")
    if not isinstance(speedups, dict) or not speedups:
        raise SystemExit(f"{path}: no speedups section to gate on")
    stamps = record.get("speedup_cpus") or {}
    default_cpus = record.get("cpu_count")
    cpus = {
        key: int(stamps.get(key, default_cpus) or 0) for key in speedups
    }
    return {key: float(value) for key, value in speedups.items()}, cpus


def load_streaming(path: Path) -> dict[str, object]:
    """The record's ``streaming`` SLO section, or ``{}`` when absent.

    Absent is normal, not an error: records predating the streaming
    bench (or runs that deselected it) simply skip the streaming gate —
    same catch-up contract as speedup keys only one record carries.
    """
    record = json.loads(path.read_text())
    section = record.get("streaming")
    return section if isinstance(section, dict) else {}


def run_streaming_checks(
    baseline: dict[str, object],
    current: dict[str, object],
    p99_tolerance: float = P99_TOLERANCE,
) -> tuple[list[str], list[str]]:
    """Gate the streaming section: shed determinism plus the p99 band.

    Returns ``(failures, notes)``.  Two independent checks:

    * **Determinism (hard, current record only).**  The bench runs the
      same seeded overload schedule twice and records both shed counts;
      any daylight between them means load shedding picked up a
      nondeterministic input (wall-clock, unseeded hashing, host
      scheduling) and replay-based recovery can no longer promise
      bitwise-identical reruns.  No tolerance.
    * **Tail latency (banded, vs baseline).**  ``p99_ticks`` may grow
      to at most ``p99_tolerance`` times the committed baseline.  Only
      comparable when both records measured the same schedule —
      ``arrival_count`` is the guard; a resized schedule skips the band
      (and the next full run rebaselines it).
    """
    failures: list[str] = []
    notes: list[str] = []
    if not current:
        notes.append(
            "skip streaming: current record has no streaming section"
        )
        return failures, notes

    shed = current.get("shed_packets")
    rerun = current.get("shed_packets_rerun")
    if shed != rerun:
        failures.append(
            f"streaming shed ledger is not deterministic: first run "
            f"shed {shed} packets, rerun shed {rerun} — same seed must "
            "shed identically"
        )

    if not baseline:
        notes.append(
            "skip streaming p99 band: baseline record has no streaming "
            "section"
        )
        return failures, notes
    if baseline.get("arrival_count") != current.get("arrival_count"):
        notes.append(
            f"skip streaming p99 band: schedule resized "
            f"(baseline arrival_count {baseline.get('arrival_count')}, "
            f"current {current.get('arrival_count')})"
        )
        return failures, notes

    base_p99 = baseline.get("p99_ticks")
    cur_p99 = current.get("p99_ticks")
    if not isinstance(base_p99, (int, float)) or not isinstance(
        cur_p99, (int, float)
    ):
        notes.append("skip streaming p99 band: p99_ticks missing")
        return failures, notes
    ceiling = p99_tolerance * float(base_p99)
    if float(cur_p99) > ceiling:
        failures.append(
            f"streaming p99 regressed: {cur_p99} ticks vs baseline "
            f"{base_p99} (ceiling {ceiling:.1f})"
        )
    else:
        notes.append(
            f"ok   streaming p99: {cur_p99} ticks vs baseline "
            f"{base_p99} (ceiling {ceiling:.1f})"
        )
    return failures, notes


def run_checks(
    baseline: dict[str, float],
    current: dict[str, float],
    tolerances: dict[str, float] | None = None,
    default_tolerance: float = DEFAULT_TOLERANCE,
    absolute_floors: dict[str, float] | None = None,
    baseline_cpus: dict[str, int] | None = None,
    current_cpus: dict[str, int] | None = None,
    skipped: list[str] | None = None,
) -> list[Check]:
    """Compare every key present in *both* records.

    Keys only in the baseline (a mode the smoke run skipped) or only in
    the current run (a mode newer than the committed record) are not
    gated — the gate must not block adding or retiring bench modes; the
    committed record catches up on the next full run.  Cpu-sensitive
    keys (:data:`CPU_SENSITIVE_KEYS`) whose baseline cpu stamp differs
    from the current host's drop the baseline-relative band — a
    sharded-vs-single ratio from a 1-cpu host says nothing about a
    4-cpu runner, in either direction — but keep their *absolute*
    floor when one exists (it encodes "this transport must not be a
    slowdown", which holds on any host); keys with no absolute floor
    are skipped entirely (appended to ``skipped`` when given).
    """
    tolerances = TOLERANCES if tolerances is None else tolerances
    absolute_floors = (
        ABSOLUTE_FLOORS if absolute_floors is None else absolute_floors
    )
    checks = []
    for key in sorted(set(baseline) & set(current)):
        floor = max(
            tolerances.get(key, default_tolerance) * baseline[key],
            absolute_floors.get(key, 0.0),
        )
        if (
            key in CPU_SENSITIVE_KEYS
            and baseline_cpus is not None
            and current_cpus is not None
            and baseline_cpus.get(key) != current_cpus.get(key)
        ):
            if key not in absolute_floors:
                if skipped is not None:
                    skipped.append(key)
                continue
            floor = absolute_floors[key]
        checks.append(
            Check(
                key=key,
                baseline=baseline[key],
                current=current[key],
                floor=floor,
            )
        )
    return checks


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="fail when a committed speedup ratio regressed"
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=BASELINE_PATH,
        help="committed perf record (default: BENCH_throughput.json)",
    )
    parser.add_argument(
        "--current",
        type=Path,
        default=CURRENT_PATH,
        help="fresh measurement (default: BENCH_throughput.smoke.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help=(
            "override every per-key band with one fraction of baseline "
            "(e.g. 0.8 when comparing two full runs)"
        ),
    )
    args = parser.parse_args(argv)

    tolerances: dict[str, float] | None = None
    absolute_floors: dict[str, float] | None = None
    default_tolerance = DEFAULT_TOLERANCE
    if args.tolerance is not None:
        # An explicit override replaces the whole banding scheme,
        # absolute floors included — one predictable fraction.
        tolerances = {}
        absolute_floors = {}
        default_tolerance = args.tolerance

    baseline_speedups, baseline_cpus = load_record(args.baseline)
    current_speedups, current_cpus = load_record(args.current)
    skipped: list[str] = []
    checks = run_checks(
        baseline_speedups,
        current_speedups,
        tolerances=tolerances,
        default_tolerance=default_tolerance,
        absolute_floors=absolute_floors,
        baseline_cpus=baseline_cpus,
        current_cpus=current_cpus,
        skipped=skipped,
    )
    for key in skipped:
        print(
            f"skip {key}: baseline measured on {baseline_cpus.get(key)} "
            f"cpu(s), current on {current_cpus.get(key)} — "
            "cpu-sensitive ratio not comparable"
        )
    if not checks:
        if skipped:
            print(
                f"all {len(skipped)} overlapping keys were cpu-skipped; "
                "nothing left to gate on this host"
            )
            return 0
        print("no overlapping speedup keys; nothing to gate", file=sys.stderr)
        return 1

    failed = False
    for check in checks:
        status = "ok  " if check.ok else "FAIL"
        print(
            f"{status} {check.key}: current {check.current:.2f}x vs "
            f"baseline {check.baseline:.2f}x (floor {check.floor:.2f}x)"
        )
        failed |= not check.ok

    stream_failures, stream_notes = run_streaming_checks(
        load_streaming(args.baseline), load_streaming(args.current)
    )
    for note in stream_notes:
        print(note)
    for failure in stream_failures:
        print(f"FAIL {failure}")
        failed = True

    if failed:
        print(
            "\nperf regression: a speedup ratio fell out of its tolerance "
            "band (see FAIL lines above)",
            file=sys.stderr,
        )
        return 1
    print(f"\nall {len(checks)} speedup ratios within tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
