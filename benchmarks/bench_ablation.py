"""Ablation bench — stride distributions and the label method."""

from repro.core.config import ArchitectureConfig
from repro.experiments.common import build_partition_tries
from repro.experiments.registry import run_experiment


def test_ablation_regeneration(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("ablation", write_csv=False), rounds=1, iterations=1
    )
    print(result.render())
    assert result.headline["mean_label_saving_percent"] > 30.0


def test_stride_sweep_build_cost(benchmark, mac_gozb):
    """Deep stride distributions trade build/update cost for memory; the
    bench quantifies construction under the single-level (flat) layout,
    the paper's 3-level choice and a unibit-like distribution."""

    def build_three_level():
        return build_partition_tries(
            mac_gozb, "eth_dst", ArchitectureConfig(strides=(5, 5, 6))
        )

    tries = benchmark.pedantic(build_three_level, rounds=2, iterations=1)
    assert len(tries) == 3


def test_flat_lut_strides_build_cost(benchmark, mac_bbra):
    def build_flat():
        return build_partition_tries(
            mac_bbra, "eth_dst", ArchitectureConfig(strides=(16,))
        )

    tries = benchmark.pedantic(build_flat, rounds=2, iterations=1)
    # A flat 2^16 layout has exactly one record per unique value (L1 only).
    for trie in tries.values():
        assert trie.level_stats()[0].records == len(trie)
