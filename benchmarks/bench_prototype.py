"""Prototype bench — the Section V.A totals (5 Mbit / 2 Mbit MBT / 209).

Benchmarks the full prototype build (4 lookup tables over the worst-case
filters) and the memory-report computation, asserting the paper-scale
summary.
"""

from repro.core.builder import build_prototype
from repro.experiments.registry import run_experiment
from repro.memory.cost_model import MemoryModel
from repro.memory.report import architecture_memory_report


def test_prototype_regeneration(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("prototype", write_csv=False), rounds=1, iterations=1
    )
    print(result.render())
    assert 2.0 <= result.headline["total_mbits"] <= 10.0  # paper: 5
    assert 1.0 <= result.headline["mbt_mbits"] <= 4.0  # paper: 2
    assert result.headline["largest_lut_entries"] == 209
    assert result.headline["max_l1_records"] <= 32
    assert result.headline["max_l1_bits"] <= 1024  # paper: 832 bits
    assert result.headline["fits_device"] == 1.0


def test_build_prototype_architecture(benchmark, mac_gozb, routing_yoza):
    prototype = benchmark.pedantic(
        build_prototype, args=(mac_gozb, routing_yoza), rounds=1, iterations=1
    )
    assert len(prototype.tables) == 4


def test_memory_report_throughput(benchmark, mac_gozb, routing_yoza):
    prototype = build_prototype(mac_gozb, routing_yoza)
    report = benchmark(
        architecture_memory_report, prototype, MemoryModel.FULL_ARRAY
    )
    assert report.total_bits > 0
