"""Lookup-throughput bench — the architecture against every baseline.

Not a paper figure, but the property the paper's memory analysis is in
service of: classification throughput.  One trace, four classifiers —
the decomposition architecture, the linear flow table, TSS and TCAM.
"""

import pytest

from repro.algorithms.tcam import Tcam
from repro.algorithms.tss import TupleSpaceSearch
from repro.core.builder import build_lookup_table
from repro.openflow.table import FlowTable

TRACE_LEN = 400


@pytest.fixture(scope="module")
def routing_trace(routing_bbra, trace_generator):
    matches = [r.to_match() for r in routing_bbra.rules[:100]]
    return trace_generator.field_trace(
        matches, TRACE_LEN, hit_rate=0.8, fill_fields=routing_bbra.field_names
    )


def test_lookup_architecture(benchmark, routing_bbra, routing_trace):
    table = build_lookup_table(routing_bbra)

    def classify_trace():
        return sum(1 for f in routing_trace if table.lookup(f) is not None)

    hits = benchmark(classify_trace)
    assert hits > TRACE_LEN // 2


def test_lookup_linear_flow_table(benchmark, routing_bbra, routing_trace):
    table = FlowTable()
    for entry in routing_bbra.to_flow_entries():
        table.add(entry)

    def classify_trace():
        return sum(1 for f in routing_trace if table.lookup(f) is not None)

    hits = benchmark.pedantic(classify_trace, rounds=3, iterations=1)
    assert hits > TRACE_LEN // 2


def test_lookup_tss(benchmark, routing_bbra, routing_trace):
    tss = TupleSpaceSearch.from_rule_set(routing_bbra)

    def classify_trace():
        return sum(1 for f in routing_trace if tss.lookup(f) is not None)

    hits = benchmark(classify_trace)
    assert hits > TRACE_LEN // 2


def test_lookup_tcam(benchmark, routing_bbra, routing_trace):
    tcam = Tcam.from_rule_set(routing_bbra)

    def classify_trace():
        return sum(1 for f in routing_trace if tcam.lookup(f) is not None)

    hits = benchmark.pedantic(classify_trace, rounds=3, iterations=1)
    assert hits > TRACE_LEN // 2


def test_all_classifiers_agree(routing_bbra, routing_trace):
    """Sanity: throughput comparisons are only meaningful if every
    classifier returns the same decisions."""
    table = build_lookup_table(routing_bbra)
    tss = TupleSpaceSearch.from_rule_set(routing_bbra)
    tcam = Tcam.from_rule_set(routing_bbra)
    for fields in routing_trace:
        a = table.lookup(fields)
        b = tss.lookup(fields)
        c = tcam.lookup(fields)
        assert (a is None) == (b is None) == (c is None)
        if a is not None:
            assert a.priority == b.priority == c.priority
