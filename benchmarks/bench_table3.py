"""Table III bench — the unique-value survey over all 16 MAC filters.

Benchmarks the Section III analysis pipeline itself (the generation of
the calibrated sets is cached session-wide) and asserts the regenerated
table matches the paper cell for cell.
"""

from repro.analysis.survey import mac_survey_table
from repro.experiments.common import all_filter_names, mac_rule_set
from repro.experiments.registry import run_experiment
from repro.filters.paper_data import TABLE3_MAC_STATS


def test_table3_regeneration(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("table3", write_csv=False), rounds=1, iterations=1
    )
    print(result.render())
    assert result.headline["cell_mismatches_vs_paper"] == 0


def test_mac_survey_throughput(benchmark):
    rule_sets = {name: mac_rule_set(name) for name in all_filter_names()}

    def survey():
        return mac_survey_table(rule_sets)

    table = benchmark(survey)
    for row in table.rows:
        stats = TABLE3_MAC_STATS[str(row[0])]
        assert int(row[1]) == stats.rules
        assert int(row[2]) == stats.unique_vlan
