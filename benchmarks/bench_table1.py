"""Table I bench — build cost of each lookup-algorithm category.

Regenerates the paper's Table I comparison (quantified on the bbra MAC
filter) and benchmarks what the table summarises: how expensive each
category is to construct for the same rule set.
"""

from repro.algorithms.tcam import Tcam
from repro.algorithms.tss import TupleSpaceSearch
from repro.baselines.hypercuts import HyperCutsTree
from repro.core.builder import build_lookup_table
from repro.experiments.registry import run_experiment


def test_table1_regeneration(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("table1", write_csv=False), rounds=1, iterations=1
    )
    print(result.render())
    assert result.headline["hypercuts_replication"] >= 1.0
    assert result.headline["tcam_kbits"] > 0


def test_build_tcam(benchmark, mac_bbra):
    tcam = benchmark(Tcam.from_rule_set, mac_bbra)
    assert len(tcam) == len(mac_bbra)


def test_build_tss(benchmark, mac_bbra):
    tss = benchmark(TupleSpaceSearch.from_rule_set, mac_bbra)
    assert tss.tuple_count == 1


def test_build_hypercuts(benchmark, mac_bbra):
    tree = benchmark.pedantic(
        HyperCutsTree, args=(mac_bbra,), kwargs={"binth": 8}, rounds=3, iterations=1
    )
    assert tree.stats().rules == len(mac_bbra)


def test_build_decomposition(benchmark, mac_bbra):
    table = benchmark.pedantic(
        build_lookup_table, args=(mac_bbra,), rounds=3, iterations=1
    )
    assert len(table) == len(mac_bbra)
