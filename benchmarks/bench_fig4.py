"""Fig. 4 bench — per-level memory of the IP tries (regular + outliers)."""

from repro.experiments.common import routing_ip_tries
from repro.experiments.registry import run_experiment
from repro.memory.cost_model import trie_group_cost


def test_fig4_regeneration(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("fig4", write_csv=False), rounds=1, iterations=1
    )
    print(result.render())
    assert result.headline["outlier_higher_dominates"] == 1.0
    assert (
        result.headline["max_outlier_higher_kbits_sparse"]
        > result.headline["max_regular_lower_kbits_sparse"]
    )


def test_outlier_cost_model(benchmark):
    tries = routing_ip_tries("coza")

    def cost():
        costs, _ = trie_group_cost(tries)
        return costs

    costs = benchmark(cost)
    assert costs["ipv4_dst/hi"].total_bits > costs["ipv4_dst/lo"].total_bits
