"""Fig. 2 bench — trie construction and stored-node accounting.

Benchmarks building the worst-case Ethernet trie group (gozb) and the
largest Routing trie group (coza), then regenerates the full figure and
asserts its shape claims.
"""

from repro.experiments.common import build_partition_tries, routing_rule_set
from repro.experiments.registry import run_experiment


def test_fig2_regeneration(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("fig2", write_csv=False), rounds=1, iterations=1
    )
    print(result.render())
    assert result.headline["gozb_gap_vs_max_percent"] <= 2.0
    assert result.headline["ip_outliers_match_paper"] == 1.0


def test_build_ethernet_tries_gozb(benchmark, mac_gozb):
    tries = benchmark.pedantic(
        build_partition_tries, args=(mac_gozb, "eth_dst"), rounds=3, iterations=1
    )
    total = sum(t.stored_nodes() for t in tries.values())
    assert total > 8_000  # paper scale: 54 010 under full-array counting


def test_build_ip_tries_coza(benchmark):
    rules = routing_rule_set("coza")
    tries = benchmark.pedantic(
        build_partition_tries, args=(rules, "ipv4_dst"), rounds=1, iterations=1
    )
    # Paper: routing stays under ~40 000 stored nodes despite 185 k rules.
    total = sum(t.stored_nodes() for t in tries.values())
    assert total < 60_000
