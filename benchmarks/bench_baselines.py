"""Baseline comparison bench — TCAM vs the decomposition architecture."""

from repro.algorithms.tcam import Tcam
from repro.core.builder import build_lookup_table
from repro.experiments.registry import run_experiment
from repro.memory.report import table_memory_report


def test_baseline_tcam_regeneration(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("baseline-tcam", write_csv=False),
        rounds=1,
        iterations=1,
    )
    print(result.render())
    # Every sampled packet agreed between TCAM and the architecture.
    for row in result.tables[0].rows:
        agree, total = str(row[5]).split("/")
        assert agree == total


def test_tcam_memory_accounting(benchmark, routing_bbra):
    tcam = Tcam.from_rule_set(routing_bbra)
    size = benchmark(tcam.size)
    assert size.bits > 0


def test_decomposition_memory_accounting(benchmark, routing_bbra):
    table = build_lookup_table(routing_bbra)
    report = benchmark(table_memory_report, table)
    assert report.total_bits > 0
