"""Throughput bench — packets/sec across the runtime's lookup paths.

The workload axis the paper leaves open: the same rule set and the same
traffic, classified six ways —

- **scan**: the behavioural ``FlowTable`` linear scan, per packet;
- **decomposition**: ``OpenFlowLookupTable.lookup``, per packet;
- **batch**: ``OpenFlowLookupTable.lookup_batch`` (vectorized extraction
  + per-batch memoization), no cache;
- **cached batch**: a ``MicroflowCache`` in front of the batch path;
- **columnar cached batch**: the same cache probed through the columnar
  fast path (``PacketBatch`` views, vectorized key hashing) — the
  ``columnar_*`` record keys; the committed record must show it at
  least 2x the dict-path ``cached_batch`` on the zipf trace;
- **megaflow**: the two-tier (microflow + megaflow) ``BatchPipeline`` on
  the ``uniform-wide`` scenario, where exact-match caching collapses;
- **columnar megaflow**: the same two-tier runner replaying a columnar
  workload (vectorized masked-key probes, replay materialisation
  skipped when nobody keeps results);
- **sharded**: ``ShardedBatchPipeline`` fanning large batches across
  worker processes;
- **sharded-shm**: the shared-memory transport against the pickling
  transport on *small* batches, where per-batch serialisation overhead
  dominates the workers' useful work;
- **sharded-shm-pipelined**: the double-buffered dispatch/collect loop
  (``process_batches``, ring depth >= 2) against the lockstep shm
  round-trip on the same small batches;
- **timeout-churn**: the two-tier pipeline replaying the mice/elephant
  timeout scenario — idle/hard expiries driven by virtual-clock
  ``advance`` events and vectorized sweeps — against byte-identical
  traffic with the clock frozen (no sweeps, no expiries), so the
  ratio prices the whole lifecycle tax on end-to-end throughput;
- **shared-state**: the sharded runner on a 10^5-rule table with
  ``shared_rules=True`` (workers attach to one sealed shm snapshot,
  :mod:`repro.runtime.rulestate`) against the eager runner whose
  workers each rebuild a private replica — recording worker spin-up
  wall clock and per-worker RSS next to pkts/sec, the paper's memory
  argument measured instead of modelled (see docs/memory-model.md).

Traces carry IMIX frame lengths, so every mode also reports bits/sec
next to pkts/sec (the ``bits_per_sec`` record section).  Scenarios come
from :mod:`repro.runtime.scenarios`.  Four speedup claims are asserted
(outside smoke mode): cached batch >= 5x per-packet decomposition on
zipf, the megaflow path >= 3x the plain batched path on uniform-wide,
and — on multi-core hosts — the shm transport at least matching the
pickle transport, and the pipelined loop strictly beating the lockstep
one, on small-batch sharded wall clock (single-core hosts only
no-regression-guard the pipelined loop: overlap needs a second core to
buy wall clock).  Every measured pkts/sec lands in
``BENCH_throughput.json`` at the repo root so the perf trajectory is
tracked across PRs.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.core.architecture import MultiTableLookupArchitecture
from repro.core.builder import build_lookup_table
from repro.filters.synthetic import large_rule_set
from repro.openflow.table import FlowTable
from repro.packet.batch import PacketBatch
from repro.packet.headers import FRAME_LEN_FIELD
from repro.runtime import (
    BatchPipeline,
    MicroflowCache,
    ShardedBatchPipeline,
    StreamConfig,
    bursty_arrivals,
    churn_workload,
    columnar_workload,
    poisson_arrivals,
    run_stream,
    run_workload,
    timeout_churn_workload,
    uniform_wide_workload,
    widen_rule_set,
    zipf_weights,
)

BATCH_SIZE = 256
FLOW_COUNT = 200
REPO_ROOT = Path(__file__).resolve().parents[1]
RESULTS_PATH = REPO_ROOT / "BENCH_throughput.json"


@pytest.fixture(scope="module")
def trace_len(bench_scale) -> int:
    return max(1000, int(40_000 * bench_scale))


@pytest.fixture(scope="module")
def bench_record(smoke, trace_len):
    """Machine-readable results, written to ``BENCH_throughput.json`` at
    module teardown so the perf trajectory survives across PRs.  Smoke
    runs write a sibling ``.smoke.json`` instead: their timings are
    entry-point checks, not the committed perf record."""
    record = {
        "benchmark": "throughput",
        "smoke": smoke,
        "trace_len": trace_len,
        "batch_size": BATCH_SIZE,
        "flow_count": FLOW_COUNT,
        "cpu_count": os.cpu_count(),
        "pkts_per_sec": {},
        "bits_per_sec": {},
        "speedups": {},
        #: Per-key cpu stamp for the speedups: a merged record can carry
        #: ratios measured on different hosts, and check_regression
        #: drops the baseline-relative band for cpu-sensitive keys
        #: whose stamps disagree with the gating host (absolute floors
        #: still apply).
        "speedup_cpus": {},
        "counters": {},
        #: Open-loop streaming SLO section: tail-latency percentiles in
        #: *virtual ticks* plus the shed ledger of a fixed-size overload
        #: schedule (identical in smoke and full runs, so the gate can
        #: band p99 across records), with a same-seed rerun's shed count
        #: for the absolute determinism check.
        "streaming": {},
    }
    yield record
    path = (
        RESULTS_PATH.with_suffix(".smoke.json") if smoke else RESULTS_PATH
    )
    # Merge into any existing record so a partial run (-k selection)
    # refreshes only the modes it measured instead of clobbering the
    # committed perf trajectory.
    try:
        previous = json.loads(path.read_text())
    except (OSError, ValueError):
        previous = None
    if isinstance(previous, dict):
        for section in (
            "pkts_per_sec",
            "bits_per_sec",
            "speedups",
            "speedup_cpus",
            "counters",
            "streaming",
        ):
            merged = dict(previous.get(section) or {})
            merged.update(record[section])
            record[section] = merged
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")


@pytest.fixture(scope="module")
def zipf_trace(routing_bbra, trace_generator, trace_len):
    matches = [r.to_match() for r in routing_bbra.rules[:FLOW_COUNT]]
    flows = trace_generator.flow_pool(
        matches, fill_fields=routing_bbra.field_names
    )
    # Per-flow IMIX frame lengths: byte counters and bits/sec get real
    # numbers while the pool aliasing (codec dedup, memoization) that
    # the perf trajectory was recorded against is preserved.
    for flow, frame_len in zip(
        flows, trace_generator.frame_lengths(len(flows), "imix")
    ):
        flow[FRAME_LEN_FIELD] = frame_len
    return trace_generator.sample_trace(
        flows, trace_len, zipf_weights(len(flows))
    )


@pytest.fixture(scope="module")
def zipf_trace_bytes(zipf_trace) -> int:
    return sum(fields[FRAME_LEN_FIELD] for fields in zipf_trace)


def _batches(trace, size=BATCH_SIZE):
    return [trace[i : i + size] for i in range(0, len(trace), size)]


def _record_rates(record, mode, packets, elapsed, trace_bytes=0) -> None:
    """One mode's measured pkts/sec (and bits/sec when the trace carries
    frame lengths) into the machine-readable record."""
    if elapsed <= 0:
        return
    record["pkts_per_sec"][mode] = round(packets / elapsed)
    if trace_bytes:
        record["bits_per_sec"][mode] = round(8 * trace_bytes / elapsed)


def _record_speedup(record, key, value) -> None:
    """One speedup ratio, stamped with the cpu count it was measured on
    (check_regression refuses to diff cpu-sensitive ratios across
    differently-sized hosts)."""
    record["speedups"][key] = round(value, 2)
    record["speedup_cpus"][key] = os.cpu_count()


def _report_pps(
    benchmark, packets: int, record=None, mode=None, trace_bytes=0
) -> None:
    if benchmark.stats is None:  # --benchmark-disable
        return
    mean = benchmark.stats.stats.mean
    if mean > 0:
        pps = round(packets / mean)
        benchmark.extra_info["pkts_per_sec"] = pps
        if record is not None and mode is not None:
            _record_rates(record, mode, packets, mean, trace_bytes)


def _mean_worker_rss_kib(pids) -> int:
    """Mean resident set size (KiB) of the given worker pids, read from
    ``/proc/<pid>/status``.  Returns 0 where /proc is unavailable (the
    caller skips the RSS assertions, keeping everything else portable)."""
    sizes = []
    for pid in pids:
        try:
            status = Path(f"/proc/{pid}/status").read_text()
        except OSError:
            return 0
        for line in status.splitlines():
            if line.startswith("VmRSS:"):
                sizes.append(int(line.split()[1]))
                break
    if not sizes:
        return 0
    return round(sum(sizes) / len(sizes))


def _assert_equivalent(got, expected) -> None:
    assert len(got) == len(expected)
    for a, b in zip(got, expected):
        assert a.output_ports == b.output_ports
        assert a.sent_to_controller == b.sent_to_controller
        assert a.dropped == b.dropped
        assert a.metadata == b.metadata
        assert a.tables_visited == b.tables_visited
        assert a.final_fields == b.final_fields


def test_throughput_scan(
    benchmark, routing_bbra, zipf_trace, zipf_trace_bytes, bench_record
):
    table = FlowTable()
    for entry in routing_bbra.to_flow_entries():
        table.add(entry)
    # The scan path is orders of magnitude slower; keep rounds minimal.
    hits = benchmark.pedantic(
        lambda: sum(1 for f in zipf_trace if table.lookup(f) is not None),
        rounds=1,
        iterations=1,
    )
    assert hits > len(zipf_trace) // 2
    _report_pps(
        benchmark, len(zipf_trace), bench_record, "scan", zipf_trace_bytes
    )


def test_throughput_decomposition(
    benchmark, routing_bbra, zipf_trace, zipf_trace_bytes, bench_record,
    profile_mode,
):
    table = build_lookup_table(routing_bbra)

    def classify():
        return sum(1 for f in zipf_trace if table.lookup(f) is not None)

    hits = benchmark.pedantic(classify, rounds=3, iterations=1)
    assert hits > len(zipf_trace) // 2
    _report_pps(
        benchmark,
        len(zipf_trace),
        bench_record,
        "decomposition",
        zipf_trace_bytes,
    )
    with profile_mode("decomposition"):
        classify()


def test_throughput_batch(
    benchmark, routing_bbra, zipf_trace, zipf_trace_bytes, bench_record,
    profile_mode,
):
    table = build_lookup_table(routing_bbra)
    batches = _batches(zipf_trace)

    def classify():
        return sum(
            1
            for batch in batches
            for hit in table.lookup_batch(batch)
            if hit is not None
        )

    hits = benchmark.pedantic(classify, rounds=3, iterations=1)
    assert hits > len(zipf_trace) // 2
    _report_pps(
        benchmark, len(zipf_trace), bench_record, "batch", zipf_trace_bytes
    )
    with profile_mode("batch"):
        classify()


def test_throughput_cached_batch(
    benchmark, routing_bbra, zipf_trace, zipf_trace_bytes, bench_record,
    profile_mode,
):
    table = build_lookup_table(routing_bbra)
    cache = MicroflowCache(table)
    batches = _batches(zipf_trace)

    def classify():
        return sum(
            1
            for batch in batches
            for hit in cache.lookup_batch(batch)
            if hit is not None
        )

    hits = benchmark(classify)
    assert hits > len(zipf_trace) // 2
    benchmark.extra_info["cache_hit_rate"] = round(cache.hit_rate, 3)
    _report_pps(
        benchmark,
        len(zipf_trace),
        bench_record,
        "cached_batch",
        zipf_trace_bytes,
    )
    with profile_mode("cached_batch"):
        classify()


def test_throughput_columnar_cached_batch(
    benchmark, routing_bbra, zipf_trace, zipf_trace_bytes, bench_record,
    profile_mode,
):
    """The columnar fast path over the same cache shape: one
    ``PacketBatch`` per trace, sliced into batch-size views (what
    ``columnar_workload`` emits), probed via vectorized key hashing."""
    table = build_lookup_table(routing_bbra)
    cache = MicroflowCache(table)
    columnar = PacketBatch.from_dicts(zipf_trace)
    batches = [
        columnar[i : i + BATCH_SIZE]
        for i in range(0, len(columnar), BATCH_SIZE)
    ]

    def classify():
        return sum(
            1
            for batch in batches
            for hit in cache.lookup_batch_columnar(batch)
            if hit is not None
        )

    hits = benchmark(classify)
    assert hits > len(zipf_trace) // 2
    benchmark.extra_info["cache_hit_rate"] = round(cache.hit_rate, 3)
    _report_pps(
        benchmark,
        len(zipf_trace),
        bench_record,
        "columnar_cached_batch",
        zipf_trace_bytes,
    )
    with profile_mode("columnar_cached_batch"):
        classify()


def test_columnar_cached_batch_speedup(
    routing_bbra, zipf_trace, smoke, bench_record
):
    """Acceptance claim: the columnar cached path is >= 2x the dict
    cached path on the zipf trace, outcomes and per-entry flow stats
    bitwise-identical.

    Timing asserts only outside smoke mode (see
    :func:`test_cached_batch_speedup`); equivalence always.
    """
    dict_table = build_lookup_table(routing_bbra)
    dict_cache = MicroflowCache(dict_table)
    start = time.perf_counter()
    dict_hits: list = []
    for batch in _batches(zipf_trace):
        dict_hits.extend(dict_cache.lookup_batch(batch))
    dict_elapsed = time.perf_counter() - start

    columnar_table = build_lookup_table(routing_bbra)
    columnar_cache = MicroflowCache(columnar_table)
    columnar = PacketBatch.from_dicts(zipf_trace)
    start = time.perf_counter()
    columnar_hits: list = []
    for i in range(0, len(columnar), BATCH_SIZE):
        columnar_hits.extend(
            columnar_cache.lookup_batch_columnar(columnar[i : i + BATCH_SIZE])
        )
    columnar_elapsed = time.perf_counter() - start

    for a, b in zip(dict_hits, columnar_hits):
        assert (a is None) == (b is None)
        if a is not None:
            assert a.match == b.match and a.priority == b.priority
    assert sorted(
        (e.stats.packet_count, e.stats.byte_count) for e in dict_table
    ) == sorted(
        (e.stats.packet_count, e.stats.byte_count) for e in columnar_table
    ), "columnar path skewed per-entry flow stats"

    speedup = dict_elapsed / max(columnar_elapsed, 1e-9)
    _record_speedup(bench_record, "columnar_vs_dict_cached_batch", speedup)
    print(
        f"\ndict cache {len(zipf_trace) / dict_elapsed:,.0f} pkts/s, "
        f"columnar {len(zipf_trace) / columnar_elapsed:,.0f} pkts/s "
        f"({speedup:.2f}x, hit rate {columnar_cache.hit_rate:.2f})"
    )
    if not smoke:
        assert speedup >= 2.0, (
            f"columnar cached path only {speedup:.2f}x the dict path"
        )


def test_throughput_pipeline_churn(
    benchmark, routing_bbra, trace_len, bench_record
):
    """The full batched pipeline under the churn scenario (mutations
    interleaved, caches revalidating on every flow-mod)."""
    workload = churn_workload(
        routing_bbra, packet_count=trace_len, flow_count=FLOW_COUNT
    )

    def replay():
        arch = MultiTableLookupArchitecture([build_lookup_table(routing_bbra)])
        return run_workload(
            BatchPipeline(arch), workload, batch_size=BATCH_SIZE
        )

    stats = benchmark.pedantic(replay, rounds=1, iterations=1)
    assert stats.packets == trace_len
    assert stats.uninstalls == stats.installs > 0
    benchmark.extra_info["cache_hit_rate"] = round(stats.cache_hit_rate, 3)
    bench_record["counters"]["churn_cache_hit_rate"] = round(
        stats.cache_hit_rate, 3
    )


def test_cached_batch_speedup(routing_bbra, zipf_trace, smoke, bench_record):
    """Acceptance claim: cached batch >= 5x per-packet decomposition on a
    zipf-skewed trace.

    In smoke mode (tiny trace, run inside the tier-1 suite) the timing
    window is a couple of milliseconds, so only result equivalence is
    asserted — a scheduler stall must not flake the deterministic
    suite; the full benchmark run enforces the real 5x claim.
    """
    table = build_lookup_table(routing_bbra)

    start = time.perf_counter()
    per_packet = [table.lookup(f) for f in zipf_trace]
    per_packet_elapsed = time.perf_counter() - start

    cache = MicroflowCache(table)
    cached: list = []
    start = time.perf_counter()
    for batch in _batches(zipf_trace):
        cached.extend(cache.lookup_batch(batch))
    cached_elapsed = time.perf_counter() - start

    for a, b in zip(per_packet, cached):
        assert (a is None) == (b is None)
        if a is not None:
            assert a.match == b.match and a.priority == b.priority
    speedup = per_packet_elapsed / max(cached_elapsed, 1e-9)
    _record_speedup(
        bench_record, "cached_batch_vs_decomposition", speedup
    )
    print(
        f"\nper-packet {len(zipf_trace) / per_packet_elapsed:,.0f} pkts/s, "
        f"cached batch {len(zipf_trace) / cached_elapsed:,.0f} pkts/s "
        f"({speedup:.1f}x, hit rate {cache.hit_rate:.2f})"
    )
    if not smoke:
        assert speedup >= 5.0, f"cached batch only {speedup:.1f}x faster"


def test_megaflow_uniform_wide_speedup(
    routing_bbra, trace_len, smoke, bench_record, profile_mode
):
    """Acceptance claim: on ``uniform-wide`` — where every packet is a
    fresh microflow, so exact-match caching is useless — the two-tier
    megaflow path is >= 3x the plain batched decomposition path."""
    wide = widen_rule_set(routing_bbra)
    workload = uniform_wide_workload(
        wide, packet_count=trace_len, flow_count=FLOW_COUNT
    )

    def replay(cache_capacity, megaflow_capacity):
        arch = MultiTableLookupArchitecture([build_lookup_table(wide)])
        runner = BatchPipeline(
            arch,
            cache_capacity=cache_capacity,
            megaflow_capacity=megaflow_capacity,
        )
        start = time.perf_counter()
        stats = run_workload(
            runner, workload, batch_size=BATCH_SIZE, keep_results=True
        )
        return stats, time.perf_counter() - start, runner

    plain_stats, plain_elapsed, _ = replay(None, None)
    mega_stats, mega_elapsed, runner = replay(4096, 8192)

    _assert_equivalent(mega_stats.results, plain_stats.results)
    assert mega_stats.megaflow_hit_rate > 0.5, "megaflow must absorb the trace"

    plain_pps = trace_len / plain_elapsed
    mega_pps = trace_len / mega_elapsed
    speedup = plain_elapsed / max(mega_elapsed, 1e-9)
    workload_bytes = workload.byte_count
    _record_rates(
        bench_record,
        "batch_uniform_wide",
        trace_len,
        plain_elapsed,
        workload_bytes,
    )
    _record_rates(
        bench_record,
        "megaflow_uniform_wide",
        trace_len,
        mega_elapsed,
        workload_bytes,
    )
    _record_speedup(bench_record, "megaflow_vs_batch_uniform_wide", speedup)
    bench_record["counters"]["uniform_wide_megaflow_hit_rate"] = round(
        mega_stats.megaflow_hit_rate, 3
    )
    bench_record["counters"]["uniform_wide_megaflow_entries"] = len(
        runner.megaflow
    )
    print(
        f"\nplain batch {plain_pps:,.0f} pkts/s, "
        f"megaflow {mega_pps:,.0f} pkts/s ({speedup:.1f}x, "
        f"hit rate {mega_stats.megaflow_hit_rate:.2f}, "
        f"{len(runner.megaflow)} aggregates)"
    )
    with profile_mode("megaflow_uniform_wide"):
        replay(4096, 8192)
    if not smoke:
        assert speedup >= 3.0, f"megaflow path only {speedup:.1f}x faster"


def test_columnar_megaflow_uniform_wide(
    routing_bbra, trace_len, smoke, bench_record, profile_mode
):
    """The ``columnar_megaflow_uniform_wide`` mode: the two-tier runner
    replaying a columnar workload (vectorized ``lanes & mask`` probes;
    no per-packet result materialisation when nobody keeps results)
    against the dict-path megaflow replay of byte-identical traffic.
    Must never lose to the dict path outside smoke mode; results and
    counters are checked identical."""
    wide = widen_rule_set(routing_bbra)
    workload = uniform_wide_workload(
        wide, packet_count=trace_len, flow_count=FLOW_COUNT
    )
    columnar = columnar_workload(workload)

    def runner():
        return BatchPipeline(
            MultiTableLookupArchitecture([build_lookup_table(wide)]),
            cache_capacity=4096,
            megaflow_capacity=8192,
        )

    def replay(target, keep_results=False):
        instance = runner()
        start = time.perf_counter()
        stats = run_workload(
            instance, target, batch_size=BATCH_SIZE, keep_results=keep_results
        )
        return stats, time.perf_counter() - start

    dict_stats, dict_elapsed = replay(workload)
    columnar_stats, columnar_elapsed = replay(columnar)

    for field in (
        "packets",
        "matched",
        "dropped",
        "sent_to_controller",
        "megaflow_hits",
        "megaflow_misses",
        "flow_packets",
        "flow_bytes",
    ):
        assert getattr(dict_stats, field) == getattr(columnar_stats, field), field
    # Materialised results stay bitwise-identical too (untimed pass).
    kept_dict, _ = replay(workload, keep_results=True)
    kept_columnar, _ = replay(columnar, keep_results=True)
    _assert_equivalent(kept_columnar.results, kept_dict.results)

    workload_bytes = workload.byte_count
    assert columnar.byte_count == workload_bytes
    _record_rates(
        bench_record,
        "columnar_megaflow_uniform_wide",
        trace_len,
        columnar_elapsed,
        workload_bytes,
    )
    speedup = dict_elapsed / max(columnar_elapsed, 1e-9)
    _record_speedup(
        bench_record, "columnar_vs_dict_megaflow_uniform_wide", speedup
    )
    print(
        f"\ndict megaflow {trace_len / dict_elapsed:,.0f} pkts/s, "
        f"columnar {trace_len / columnar_elapsed:,.0f} pkts/s "
        f"({speedup:.2f}x)"
    )
    with profile_mode("columnar_megaflow_uniform_wide"):
        replay(columnar)
    if not smoke:
        assert speedup >= 1.0, (
            f"columnar megaflow replay regressed to {speedup:.2f}x of the "
            "dict path"
        )


def test_sharded_large_batches(
    routing_bbra, zipf_trace, zipf_trace_bytes, smoke, bench_record
):
    """``ShardedBatchPipeline`` vs the single-process runner on large
    batches: always bitwise-identical; faster wall-clock whenever the
    host actually has cores to shard across (assertion skipped on
    single-core machines, where process fan-out cannot win)."""
    large_batches = _batches(zipf_trace, size=2048)

    single = BatchPipeline(
        MultiTableLookupArchitecture([build_lookup_table(routing_bbra)]),
        cache_capacity=None,
    )
    start = time.perf_counter()
    expected = [
        r for batch in large_batches for r in single.process_batch(batch)
    ]
    single_elapsed = time.perf_counter() - start

    with ShardedBatchPipeline(
        MultiTableLookupArchitecture([build_lookup_table(routing_bbra)]),
        workers=4,
        cache_capacity=None,
    ) as sharded:
        sharded.process_batch(large_batches[0])  # warm the workers up
        start = time.perf_counter()
        got = [
            r for batch in large_batches for r in sharded.process_batch(batch)
        ]
        sharded_elapsed = time.perf_counter() - start

    _assert_equivalent(got, expected[: len(got)])
    single_pps = len(zipf_trace) / single_elapsed
    sharded_pps = len(zipf_trace) / sharded_elapsed
    _record_rates(
        bench_record,
        "single_large_batch",
        len(zipf_trace),
        single_elapsed,
        zipf_trace_bytes,
    )
    _record_rates(
        bench_record,
        "sharded_large_batch",
        len(zipf_trace),
        sharded_elapsed,
        zipf_trace_bytes,
    )
    _record_speedup(
        bench_record,
        "sharded_vs_single",
        single_elapsed / max(sharded_elapsed, 1e-9),
    )
    print(
        f"\nsingle {single_pps:,.0f} pkts/s, sharded(4) "
        f"{sharded_pps:,.0f} pkts/s on {os.cpu_count()} cpu(s)"
    )
    if not smoke and (os.cpu_count() or 1) >= 4:
        assert sharded_pps > single_pps, (
            f"sharded {sharded_pps:,.0f} pkts/s did not beat "
            f"single-process {single_pps:,.0f} pkts/s"
        )


def test_sharded_shm_small_batches(
    routing_bbra, zipf_trace, zipf_trace_bytes, smoke, bench_record
):
    """The ``sharded-shm`` mode: shared-memory vs pickle transport on
    small batches (where the PR-2 runner was IPC-bound).  Results must
    be bitwise-identical across both transports and the single-process
    runner; on multi-core hosts the shm transport must not lose to
    pickling (assertion skipped on single-core machines, where worker
    fan-out measures scheduler noise, not transport cost)."""
    small_batches = _batches(zipf_trace, size=64)
    single = BatchPipeline(
        MultiTableLookupArchitecture([build_lookup_table(routing_bbra)]),
        cache_capacity=None,
    )
    expected = [r for batch in small_batches for r in single.process_batch(batch)]

    elapsed = {}
    for transport in ("pickle", "shm"):
        with ShardedBatchPipeline(
            MultiTableLookupArchitecture([build_lookup_table(routing_bbra)]),
            workers=4,
            cache_capacity=None,
            transport=transport,
        ) as sharded:
            sharded.process_batch(small_batches[0])  # warm the workers up
            warmed_flow_packets = sharded.flow_packets
            start = time.perf_counter()
            got = [
                r
                for batch in small_batches
                for r in sharded.process_batch(batch)
            ]
            elapsed[transport] = time.perf_counter() - start
            _assert_equivalent(got, expected[: len(got)])
            # Worker flow hits must land on the parent's entries.
            assert sharded.flow_packets - warmed_flow_packets == sum(
                len(r.matched_entries) for r in got
            )

    pickle_pps = len(zipf_trace) / elapsed["pickle"]
    shm_pps = len(zipf_trace) / elapsed["shm"]
    speedup = elapsed["pickle"] / max(elapsed["shm"], 1e-9)
    _record_rates(
        bench_record,
        "sharded_pickle_small_batch",
        len(zipf_trace),
        elapsed["pickle"],
        zipf_trace_bytes,
    )
    _record_rates(
        bench_record,
        "sharded_shm_small_batch",
        len(zipf_trace),
        elapsed["shm"],
        zipf_trace_bytes,
    )
    _record_speedup(bench_record, "shm_vs_pickle_small_batch", speedup)
    print(
        f"\npickle {pickle_pps:,.0f} pkts/s, shm {shm_pps:,.0f} pkts/s "
        f"({speedup:.2f}x) at batch=64 on {os.cpu_count()} cpu(s)"
    )
    if not smoke and (os.cpu_count() or 1) >= 2:
        assert shm_pps >= pickle_pps, (
            f"shm transport {shm_pps:,.0f} pkts/s lost to pickle "
            f"{pickle_pps:,.0f} pkts/s on small batches"
        )


def test_sharded_shm_pipelined_small_batches(
    routing_bbra, zipf_trace, zipf_trace_bytes, smoke, bench_record
):
    """The ``sharded-shm-pipelined`` mode: the double-buffered
    dispatch/collect loop (``process_batches``, depth 4) against the
    lockstep shm round-trip at batch=64.  Results must be
    bitwise-identical to the single-process runner, with byte-exact
    parent-side flow stats.  Wall clock is the best of five
    *interleaved* rounds per mode (serial, pipelined, serial, ... — the
    per-round work is small enough for scheduler noise to matter, and
    interleaving cancels background-load drift): on multi-core hosts
    the pipelined loop must strictly win — the parent encodes batch N+1
    while workers classify batch N; on a single core no overlap is
    physically available, so the >= 1.0x assertion is a no-regression
    guard on the ring bookkeeping."""
    small_batches = _batches(zipf_trace, size=64)
    single = BatchPipeline(
        MultiTableLookupArchitecture([build_lookup_table(routing_bbra)]),
        cache_capacity=None,
    )
    expected = [r for batch in small_batches for r in single.process_batch(batch)]
    rounds = 1 if smoke else 5

    def replay(sharded) -> float:
        start = time.perf_counter()
        if sharded.depth == 1:
            got = [
                r
                for batch in small_batches
                for r in sharded.process_batch(batch)
            ]
        else:
            got = [
                r
                for chunk in sharded.process_batches(small_batches)
                for r in chunk
            ]
        took = time.perf_counter() - start
        _assert_equivalent(got, expected[: len(got)])
        return took

    def runner(depth):
        sharded = ShardedBatchPipeline(
            MultiTableLookupArchitecture([build_lookup_table(routing_bbra)]),
            workers=4,
            cache_capacity=None,
            transport="shm",
            depth=depth,
        )
        sharded.process_batch(small_batches[0])  # warm the workers up
        return sharded

    elapsed = {}
    flow_totals = {}
    # The two modes' rounds are interleaved (serial, pipelined, serial,
    # ...), so slow background-load drift hits both equally and the
    # min-of-rounds ratio measures the transports, not the scheduler.
    with runner(1) as serial, runner(4) as pipelined:
        warmed = {
            "serial": (serial.flow_packets, serial.flow_bytes),
            "pipelined": (pipelined.flow_packets, pipelined.flow_bytes),
        }
        best = {"serial": float("inf"), "pipelined": float("inf")}
        for _ in range(rounds):
            best["serial"] = min(best["serial"], replay(serial))
            best["pipelined"] = min(best["pipelined"], replay(pipelined))
        elapsed = best
        for mode, sharded in (("serial", serial), ("pipelined", pipelined)):
            flow_totals[mode] = (
                (sharded.flow_packets - warmed[mode][0]) / rounds,
                (sharded.flow_bytes - warmed[mode][1]) / rounds,
            )
        supervision = pipelined.supervision_snapshot()

    # Byte-exact stats merge on both modes, every round.
    per_round_packets = sum(len(r.matched_entries) for r in expected)
    per_round_bytes = sum(
        len(r.matched_entries) * r.final_fields.get(FRAME_LEN_FIELD, 0)
        for r in expected
    )
    for mode, (packets, byte_count) in flow_totals.items():
        assert packets == per_round_packets, mode
        assert byte_count == per_round_bytes, mode

    serial_pps = len(zipf_trace) / elapsed["serial"]
    pipelined_pps = len(zipf_trace) / elapsed["pipelined"]
    speedup = elapsed["serial"] / max(elapsed["pipelined"], 1e-9)
    _record_rates(
        bench_record,
        "sharded_shm_pipelined_small_batch",
        len(zipf_trace),
        elapsed["pipelined"],
        zipf_trace_bytes,
    )
    _record_rates(
        bench_record,
        "sharded_shm_serial_small_batch",
        len(zipf_trace),
        elapsed["serial"],
        zipf_trace_bytes,
    )
    _record_speedup(
        bench_record, "pipelined_vs_serial_shm_small_batch", speedup
    )
    # Healthy-path supervision must be pure bookkeeping: any nonzero
    # recovery counter here means the fault-tolerance layer interfered
    # with a run where nothing failed.  Recorded under "counters" (not
    # "speedups"), so the perf-regression bands are untouched.
    assert all(count == 0 for count in supervision.values()), supervision
    for key in ("restarts", "replayed_batches", "inline_packets"):
        bench_record["counters"][f"sharded_pipelined_{key}"] = supervision[key]
    print(
        f"\nserial shm {serial_pps:,.0f} pkts/s, pipelined shm "
        f"{pipelined_pps:,.0f} pkts/s ({speedup:.2f}x) at batch=64, "
        f"depth=4 on {os.cpu_count()} cpu(s)"
    )
    if not smoke:
        if (os.cpu_count() or 1) >= 2:
            assert pipelined_pps > serial_pps, (
                f"pipelined shm {pipelined_pps:,.0f} pkts/s did not beat "
                f"lockstep {serial_pps:,.0f} pkts/s on a multi-core host"
            )
        else:
            # The acceptance floor: pipelining must never cost wall
            # clock, even where no overlap is physically available
            # (interleaved min-of-5 rounds keeps scheduler noise out of
            # the ratio).
            assert speedup >= 1.0, (
                f"pipelined shm regressed to {speedup:.2f}x of lockstep "
                "on a single core (ring bookkeeping overhead)"
            )


def test_throughput_timeout_churn_lifecycle(
    routing_bbra, trace_len, smoke, bench_record
):
    """The ``timeout-churn`` mode: the two-tier pipeline replaying the
    mice/elephant timeout scenario — expiry sweeps interleaved with the
    traffic — against the same traffic with the clock frozen
    (``advance=None``: no sweeps, nothing expires).  The workload is
    rebuilt per replay because install events carry the mutable twin
    entries; replaying one workload object twice would leak the first
    run's flow counters into the second.  Beyond the end-to-end ratio,
    the vectorized sweep itself is priced in entry lanes per second via
    dt=0 advances (sweeps that move no time, so nothing expires and no
    table versions bump)."""

    def build(advance):
        return timeout_churn_workload(
            routing_bbra,
            packet_count=trace_len,
            flow_count=FLOW_COUNT,
            advance=advance,
        )

    def replay(workload):
        runner = BatchPipeline(
            MultiTableLookupArchitecture([build_lookup_table(routing_bbra)]),
            cache_capacity=4096,
            megaflow_capacity=8192,
        )
        start = time.perf_counter()
        stats = run_workload(runner, workload, batch_size=BATCH_SIZE)
        return stats, time.perf_counter() - start, runner

    frozen = build(None)
    frozen_stats, frozen_elapsed, _ = replay(frozen)
    swept = build(2)
    swept_stats, swept_elapsed, runner = replay(swept)

    assert frozen_stats.advances == frozen_stats.expired == 0
    assert swept_stats.packets == frozen_stats.packets > 0
    assert swept_stats.expired > 0, "timeout churn must expire entries"
    reasons = {removed.reason for removed in swept_stats.flow_removed}
    assert reasons == {"idle", "hard"}, reasons
    assert swept.byte_count == frozen.byte_count

    packets = swept_stats.packets
    _record_rates(
        bench_record,
        "pipeline_timeout_churn",
        packets,
        swept_elapsed,
        swept.byte_count,
    )
    speedup = frozen_elapsed / max(swept_elapsed, 1e-9)
    _record_speedup(bench_record, "timeout_churn_swept_vs_frozen", speedup)
    bench_record["counters"]["timeout_churn_expired"] = swept_stats.expired

    # Sweep cost in isolation: dt=0 advances over the live table.
    lanes_before = runner.lifecycle.stats.entries_scanned
    reps = 10 if smoke else 200
    start = time.perf_counter()
    for _ in range(reps):
        runner.advance_clock(0)
    sweep_elapsed = time.perf_counter() - start
    lanes = runner.lifecycle.stats.entries_scanned - lanes_before
    lanes_per_sec = round(lanes / max(sweep_elapsed, 1e-9))
    bench_record["counters"]["timeout_churn_sweep_lanes_per_sec"] = (
        lanes_per_sec
    )
    print(
        f"\nfrozen clock {packets / frozen_elapsed:,.0f} pkts/s, swept "
        f"{packets / swept_elapsed:,.0f} pkts/s ({speedup:.2f}x, "
        f"{swept_stats.expired} expired over {swept_stats.advances} "
        f"sweeps); steady-state sweep {lanes_per_sec:,.0f} lanes/s"
    )
    if not smoke:
        assert speedup >= 0.5, (
            f"lifecycle sweeps cut timeout-churn throughput to "
            f"{speedup:.2f}x of the frozen-clock replay"
        )


def test_shared_state_large_rules(
    trace_generator, smoke, bench_scale, bench_record
):
    """The ``shared-state`` mode: two sharded workers over a 10^5-rule
    routing table, shared sealed snapshot vs eager per-worker replicas.

    Three numbers land in the record (``counters`` section, so the
    perf-regression bands are untouched):

    - worker spin-up wall clock for each mode — the first batch, which
      triggers the lazy fleet spawn.  Eager workers rebuild the whole
      table from the spec (O(rules)); shared workers attach numpy views
      onto the sealed block (O(1) in rules), which is what makes the
      PR-7 supervisor's respawn path viable at this scale;
    - mean per-worker RSS *delta* against the parent, sampled at the
      same instant after classifying the trace — the paper's
      per-datapath memory cost, measured.  Under ``fork`` a worker's
      resident set starts as a copy of the parent's page tables, so the
      delta isolates what the worker itself allocated: a full private
      replica (eager, O(rules)) vs freshly-touched pages of the shared
      mapping (shared, O(working set));
    - shared-mode pkts/sec (``shared_state_sharded``), so throughput on
      a table 250x the calibrated sets is tracked across PRs.

    Results and parent-side flow stats must be bitwise-identical across
    the two modes — always, including smoke."""
    rules = 5_000 if smoke else 100_000
    rule_set = large_rule_set(rules)
    matches = [r.to_match() for r in rule_set.rules if r.fields][:FLOW_COUNT]
    flows = trace_generator.flow_pool(
        matches, fill_fields=rule_set.field_names
    )
    for flow, frame_len in zip(
        flows, trace_generator.frame_lengths(len(flows), "imix")
    ):
        flow[FRAME_LEN_FIELD] = frame_len
    packets = max(512, int(8192 * bench_scale))
    trace = trace_generator.sample_trace(
        flows, packets, zipf_weights(len(flows))
    )
    trace_bytes = sum(fields[FRAME_LEN_FIELD] for fields in trace)
    batches = _batches(trace, size=2048)

    spinup: dict[str, float] = {}
    rss: dict[str, int] = {}
    results: dict[str, list] = {}
    flow_totals: dict[str, tuple[int, int]] = {}
    for mode, shared in (("eager", False), ("shared", True)):
        arch = MultiTableLookupArchitecture([build_lookup_table(rule_set)])
        with ShardedBatchPipeline(
            arch, workers=2, cache_capacity=None, shared_rules=shared
        ) as sharded:
            # First batch triggers the lazy fleet spawn: eager workers
            # rebuild the table from the spec, shared workers attach.
            start = time.perf_counter()
            collected = list(sharded.process_batch(batches[0]))
            spinup[mode] = time.perf_counter() - start
            start = time.perf_counter()
            for batch in batches[1:]:
                collected.extend(sharded.process_batch(batch))
            classify_elapsed = time.perf_counter() - start
            worker_rss = _mean_worker_rss_kib(
                proc.pid for proc in sharded._procs
            )
            parent_rss = _mean_worker_rss_kib([os.getpid()])
            rss[mode] = worker_rss - parent_rss if worker_rss else 0
            results[mode] = collected
            flow_totals[mode] = (sharded.flow_packets, sharded.flow_bytes)
        if shared:
            _record_rates(
                bench_record,
                "shared_state_sharded",
                len(trace) - len(batches[0]),
                classify_elapsed,
                trace_bytes - sum(
                    fields[FRAME_LEN_FIELD] for fields in batches[0]
                ),
            )

    _assert_equivalent(results["shared"], results["eager"])
    assert flow_totals["shared"] == flow_totals["eager"]

    bench_record["counters"]["shared_state_rules"] = rules
    for mode in ("eager", "shared"):
        bench_record["counters"][f"shared_state_spinup_{mode}_s"] = round(
            spinup[mode], 4
        )
        if rss[mode]:
            bench_record["counters"][
                f"shared_state_worker_rss_delta_{mode}_kib"
            ] = rss[mode]
    print(
        f"\nspin-up eager {spinup['eager']:.3f}s vs shared "
        f"{spinup['shared']:.3f}s at {rules:,} rules; mean worker RSS "
        f"delta eager {rss['eager']:,} KiB vs shared {rss['shared']:,} KiB"
    )
    if not smoke:
        assert spinup["shared"] < spinup["eager"], (
            f"shared spin-up {spinup['shared']:.3f}s did not beat eager "
            f"{spinup['eager']:.3f}s at {rules:,} rules"
        )
        if rss["eager"] and rss["shared"]:
            assert rss["shared"] < rss["eager"], (
                f"shared worker RSS delta {rss['shared']:,} KiB did not "
                f"beat eager {rss['eager']:,} KiB at {rules:,} rules"
            )


#: The streaming SLO schedule is FIXED-SIZE — deliberately *not* scaled
#: by ``bench_scale``.  Its latencies are measured in virtual ticks, so
#: the run costs little wall clock even in full mode, and keeping the
#: schedule identical across smoke and full runs is what lets
#: ``check_regression`` band the p99 across records (it refuses to diff
#: records whose ``arrival_count`` differs).  Shed counts and
#: percentiles depend only on arrival timing, never on rule content, so
#: the smoke-sized rule set does not perturb them.
SLO_ARRIVALS = 2000
SLO_SEED = 11
SLO_CONFIG = StreamConfig(
    capacity=64,
    batch_size=16,
    form_deadline=8,
    window=2,
    service_rate=0.5,
    degrade_after=2,
)


def test_streaming_overload_slo(routing_bbra, trace_len, smoke, bench_record):
    """The ``streaming`` mode: an open-loop bursty overload stream
    through bounded admission, recording tail-latency percentiles (in
    virtual ticks) and the shed ledger.  The same seed is run twice and
    both shed counts land in the record — the regression gate's
    absolute determinism check (same seed => identical shed count)
    rides on that pair.  A second, ``bench_scale``-sized underloaded
    stream prices the streaming layer itself in wall-clock pkts/sec."""
    schedule = bursty_arrivals(
        routing_bbra,
        packet_count=SLO_ARRIVALS,
        mean_burst=24.0,
        burst_gap=16.0,
        seed=SLO_SEED,
    )

    def one_run():
        runner = BatchPipeline(
            MultiTableLookupArchitecture([build_lookup_table(routing_bbra)]),
            cache_capacity=4096,
            megaflow_capacity=8192,
        )
        return run_stream(runner, schedule, SLO_CONFIG)

    report = one_run()
    rerun = one_run()
    report.assert_conserved()
    assert report.shed_packets > 0, "the SLO schedule must overload"
    assert report.peak_occupancy <= SLO_CONFIG.capacity
    assert rerun.shed == report.shed, "same-seed rerun shed a different set"
    assert rerun.latencies == report.latencies

    bench_record["streaming"] = {
        "schedule": schedule.name,
        "arrival_count": report.admitted_packets,
        "offered_load": round(schedule.offered_load, 4),
        "service_rate": SLO_CONFIG.service_rate,
        "capacity": SLO_CONFIG.capacity,
        "shed_packets": report.shed_packets,
        "shed_packets_rerun": rerun.shed_packets,
        "shed_rate": round(report.shed_rate, 4),
        "shed_by_reason": report.shed_by_reason,
        "p50_ticks": report.p50,
        "p99_ticks": report.p99,
        "p999_ticks": report.p999,
        "max_level": report.max_level,
        "peak_occupancy": report.peak_occupancy,
        "stalls": report.stalls,
    }

    # Wall-clock cost of the streaming layer: an underloaded open-loop
    # poisson stream (nothing shed, no degradation) sized by
    # bench_scale like every other wall-clock mode.
    open_loop = poisson_arrivals(
        routing_bbra, packet_count=trace_len, mean_gap=1.0, seed=7
    )
    runner = BatchPipeline(
        MultiTableLookupArchitecture([build_lookup_table(routing_bbra)]),
        cache_capacity=4096,
        megaflow_capacity=8192,
    )
    start = time.perf_counter()
    open_report = run_stream(
        runner,
        open_loop,
        StreamConfig(capacity=4096, batch_size=BATCH_SIZE, window=4),
    )
    elapsed = time.perf_counter() - start
    open_report.assert_conserved()
    assert open_report.shed_packets == 0, (
        "capacity exceeds offered load, nothing may be shed"
    )
    _record_rates(
        bench_record,
        "streaming_open_loop",
        trace_len,
        elapsed,
        open_loop.byte_count,
    )
    print(
        f"\nstreaming SLO: p50/p99/p999 = {report.p50}/{report.p99}/"
        f"{report.p999} ticks, shed {report.shed_packets}/"
        f"{report.admitted_packets} ({report.shed_rate:.1%}), ladder "
        f"level {report.max_level}; open-loop underload "
        f"{trace_len / elapsed:,.0f} pkts/s"
    )
