"""Throughput bench — packets/sec across the runtime's lookup paths.

The workload axis the paper leaves open: the same rule set and the same
traffic, classified four ways —

- **scan**: the behavioural ``FlowTable`` linear scan, per packet;
- **decomposition**: ``OpenFlowLookupTable.lookup``, per packet;
- **batch**: ``OpenFlowLookupTable.lookup_batch`` (vectorized extraction
  + per-batch memoization), no cache;
- **cached batch**: a ``MicroflowCache`` in front of the batch path.

Scenarios come from :mod:`repro.runtime.scenarios` (uniform / zipf /
bursty / churn).  ``test_cached_batch_speedup`` asserts the headline
claim: on a zipf-skewed trace the cached batch path is >= 5x faster than
per-packet decomposition lookup.
"""

from __future__ import annotations

import time

import pytest

from repro.core.architecture import MultiTableLookupArchitecture
from repro.core.builder import build_lookup_table
from repro.openflow.table import FlowTable
from repro.runtime import (
    BatchPipeline,
    MicroflowCache,
    churn_workload,
    run_workload,
    zipf_weights,
)

BATCH_SIZE = 256
FLOW_COUNT = 200


@pytest.fixture(scope="module")
def trace_len(bench_scale) -> int:
    return max(1000, int(40_000 * bench_scale))


@pytest.fixture(scope="module")
def zipf_trace(routing_bbra, trace_generator, trace_len):
    matches = [r.to_match() for r in routing_bbra.rules[:FLOW_COUNT]]
    flows = trace_generator.flow_pool(
        matches, fill_fields=routing_bbra.field_names
    )
    return trace_generator.sample_trace(
        flows, trace_len, zipf_weights(len(flows))
    )


def _batches(trace, size=BATCH_SIZE):
    return [trace[i : i + size] for i in range(0, len(trace), size)]


def _report_pps(benchmark, packets: int) -> None:
    if benchmark.stats is None:  # --benchmark-disable
        return
    mean = benchmark.stats.stats.mean
    if mean > 0:
        benchmark.extra_info["pkts_per_sec"] = round(packets / mean)


def test_throughput_scan(benchmark, routing_bbra, zipf_trace):
    table = FlowTable()
    for entry in routing_bbra.to_flow_entries():
        table.add(entry)
    # The scan path is orders of magnitude slower; keep rounds minimal.
    hits = benchmark.pedantic(
        lambda: sum(1 for f in zipf_trace if table.lookup(f) is not None),
        rounds=1,
        iterations=1,
    )
    assert hits > len(zipf_trace) // 2
    _report_pps(benchmark, len(zipf_trace))


def test_throughput_decomposition(benchmark, routing_bbra, zipf_trace):
    table = build_lookup_table(routing_bbra)
    hits = benchmark.pedantic(
        lambda: sum(1 for f in zipf_trace if table.lookup(f) is not None),
        rounds=3,
        iterations=1,
    )
    assert hits > len(zipf_trace) // 2
    _report_pps(benchmark, len(zipf_trace))


def test_throughput_batch(benchmark, routing_bbra, zipf_trace):
    table = build_lookup_table(routing_bbra)
    batches = _batches(zipf_trace)

    def classify():
        return sum(
            1
            for batch in batches
            for hit in table.lookup_batch(batch)
            if hit is not None
        )

    hits = benchmark.pedantic(classify, rounds=3, iterations=1)
    assert hits > len(zipf_trace) // 2
    _report_pps(benchmark, len(zipf_trace))


def test_throughput_cached_batch(benchmark, routing_bbra, zipf_trace):
    table = build_lookup_table(routing_bbra)
    cache = MicroflowCache(table)
    batches = _batches(zipf_trace)

    def classify():
        return sum(
            1
            for batch in batches
            for hit in cache.lookup_batch(batch)
            if hit is not None
        )

    hits = benchmark(classify)
    assert hits > len(zipf_trace) // 2
    benchmark.extra_info["cache_hit_rate"] = round(cache.hit_rate, 3)
    _report_pps(benchmark, len(zipf_trace))


def test_throughput_pipeline_churn(benchmark, routing_bbra, trace_len):
    """The full batched pipeline under the churn scenario (mutations
    interleaved, caches flushing on every flow-mod)."""
    workload = churn_workload(
        routing_bbra, packet_count=trace_len, flow_count=FLOW_COUNT
    )

    def replay():
        arch = MultiTableLookupArchitecture([build_lookup_table(routing_bbra)])
        return run_workload(
            BatchPipeline(arch), workload, batch_size=BATCH_SIZE
        )

    stats = benchmark.pedantic(replay, rounds=1, iterations=1)
    assert stats.packets == trace_len
    assert stats.uninstalls == stats.installs > 0
    benchmark.extra_info["cache_hit_rate"] = round(stats.cache_hit_rate, 3)


def test_cached_batch_speedup(routing_bbra, zipf_trace, smoke):
    """Acceptance claim: cached batch >= 5x per-packet decomposition on a
    zipf-skewed trace.

    In smoke mode (tiny trace, run inside the tier-1 suite) the timing
    window is a couple of milliseconds, so only result equivalence is
    asserted — a scheduler stall must not flake the deterministic
    suite; the full benchmark run enforces the real 5x claim.
    """
    table = build_lookup_table(routing_bbra)

    start = time.perf_counter()
    per_packet = [table.lookup(f) for f in zipf_trace]
    per_packet_elapsed = time.perf_counter() - start

    cache = MicroflowCache(table)
    cached: list = []
    start = time.perf_counter()
    for batch in _batches(zipf_trace):
        cached.extend(cache.lookup_batch(batch))
    cached_elapsed = time.perf_counter() - start

    for a, b in zip(per_packet, cached):
        assert (a is None) == (b is None)
        if a is not None:
            assert a.match == b.match and a.priority == b.priority
    speedup = per_packet_elapsed / max(cached_elapsed, 1e-9)
    print(
        f"\nper-packet {len(zipf_trace) / per_packet_elapsed:,.0f} pkts/s, "
        f"cached batch {len(zipf_trace) / cached_elapsed:,.0f} pkts/s "
        f"({speedup:.1f}x, hit rate {cache.hit_rate:.2f})"
    )
    if not smoke:
        assert speedup >= 5.0, f"cached batch only {speedup:.1f}x faster"
