"""Shared fixtures for the benchmark suite.

Heavy inputs (the calibrated filter sets, built tries) are session-scoped
and cached inside :mod:`repro.experiments.common`, so each benchmark
measures the operation of interest, not set generation.

Smoke mode (``--smoke`` flag or ``REPRO_BENCH_SMOKE=1``) swaps the
calibrated filter sets for tiny synthetic ones and shrinks trace sizes,
so the benchmark entry points can run under the tier-1 test suite
(typically together with ``--benchmark-disable``) in seconds.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import common
from repro.filters.paper_data import MacFilterStats, RoutingFilterStats
from repro.filters.rule import RuleSet
from repro.filters.synthetic import generate_mac_set, generate_routing_set
from repro.packet.generator import PacketGenerator, TraceConfig

#: Tiny stats rows used in smoke mode (mirrors tests/conftest.py scale).
SMOKE_MAC_STATS = MacFilterStats("smokemac", 151, 16, 26, 38, 55)
SMOKE_ROUTING_STATS = RoutingFilterStats("smokeroute", 400, 12, 40, 90)


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--smoke",
        action="store_true",
        default=False,
        help="shrink benchmark inputs to smoke-test the entry points",
    )
    parser.addoption(
        "--profile",
        action="store_true",
        default=False,
        help=(
            "cProfile one extra invocation of each bench mode and write "
            "the top-20 cumulative report to bench_profiles/<mode>.txt "
            "(measured timings are untouched)"
        ),
    )


def _smoke(config: pytest.Config) -> bool:
    env = os.environ.get("REPRO_BENCH_SMOKE", "").strip().lower()
    return bool(
        config.getoption("--smoke", default=False)
        or env not in ("", "0", "false", "no")
    )


@pytest.fixture(scope="session")
def smoke(request: pytest.FixtureRequest) -> bool:
    """True when running in smoke mode (tiny inputs, entry-point check)."""
    return _smoke(request.config)


@pytest.fixture(scope="session")
def bench_scale(smoke: bool) -> float:
    """Multiplier applied to trace lengths and round counts."""
    return 0.05 if smoke else 1.0


@pytest.fixture(scope="session")
def profile_mode(request: pytest.FixtureRequest):
    """Context manager profiling one *extra* run of a bench mode.

    ``with profile_mode("cached_batch"): classify()`` writes a cProfile
    top-20 cumulative report to ``bench_profiles/cached_batch.txt`` when
    ``--profile`` (or ``REPRO_BENCH_PROFILE=1``) is set, and is a no-op
    otherwise.  Profiling always wraps a separate invocation *after* the
    measured rounds, so the recorded timings (and the CI perf gate fed
    from them) never include profiler overhead.
    """
    import contextlib
    import cProfile
    import io
    import pstats
    from pathlib import Path

    env = os.environ.get("REPRO_BENCH_PROFILE", "").strip().lower()
    enabled = bool(
        request.config.getoption("--profile", default=False)
        or env not in ("", "0", "false", "no")
    )
    out_dir = Path(__file__).resolve().parents[1] / "bench_profiles"

    @contextlib.contextmanager
    def _profile(mode: str):
        if not enabled:
            yield
            return
        profiler = cProfile.Profile()
        profiler.enable()
        try:
            yield
        finally:
            profiler.disable()
            out_dir.mkdir(exist_ok=True)
            stream = io.StringIO()
            pstats.Stats(profiler, stream=stream).sort_stats(
                "cumulative"
            ).print_stats(20)
            (out_dir / f"{mode}.txt").write_text(stream.getvalue())

    return _profile


@pytest.fixture(scope="session")
def mac_bbra(smoke: bool) -> RuleSet:
    if smoke:
        return generate_mac_set(SMOKE_MAC_STATS, seed=11)
    return common.mac_rule_set("bbra")


@pytest.fixture(scope="session")
def mac_gozb(smoke: bool) -> RuleSet:
    if smoke:
        return generate_mac_set(SMOKE_MAC_STATS, seed=12)
    return common.mac_rule_set("gozb")


@pytest.fixture(scope="session")
def routing_bbra(smoke: bool) -> RuleSet:
    if smoke:
        return generate_routing_set(SMOKE_ROUTING_STATS, seed=13)
    return common.routing_rule_set("bbra")


@pytest.fixture(scope="session")
def routing_yoza(smoke: bool) -> RuleSet:
    if smoke:
        return generate_routing_set(SMOKE_ROUTING_STATS, seed=14)
    return common.routing_rule_set("yoza")


@pytest.fixture(scope="session")
def trace_generator() -> PacketGenerator:
    return PacketGenerator(TraceConfig(seed=0xBE7C))
