"""Shared fixtures for the benchmark suite.

Heavy inputs (the calibrated filter sets, built tries) are session-scoped
and cached inside :mod:`repro.experiments.common`, so each benchmark
measures the operation of interest, not set generation.
"""

from __future__ import annotations

import pytest

from repro.experiments import common
from repro.filters.rule import RuleSet
from repro.packet.generator import PacketGenerator, TraceConfig


@pytest.fixture(scope="session")
def mac_bbra() -> RuleSet:
    return common.mac_rule_set("bbra")


@pytest.fixture(scope="session")
def mac_gozb() -> RuleSet:
    return common.mac_rule_set("gozb")


@pytest.fixture(scope="session")
def routing_bbra() -> RuleSet:
    return common.routing_rule_set("bbra")


@pytest.fixture(scope="session")
def routing_yoza() -> RuleSet:
    return common.routing_rule_set("yoza")


@pytest.fixture(scope="session")
def trace_generator() -> PacketGenerator:
    return PacketGenerator(TraceConfig(seed=0xBE7C))
