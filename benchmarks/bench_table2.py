"""Table II bench — the OXM registry regeneration (trivially fast, kept
so every paper artifact has a bench target)."""

from repro.experiments.registry import run_experiment


def test_table2_regeneration(benchmark):
    result = benchmark(run_experiment, "table2", write_csv=False)
    print(result.render())
    assert result.headline["match_fields_excluding_metadata"] == 39
    assert result.headline["common_fields"] == 15
    assert len(result.tables[0].rows) == 15
