"""Table IV bench — the unique-value survey over all 16 Routing filters,
including the four >180 k-rule sets."""

from repro.analysis.unique_values import partition_unique_entries
from repro.experiments.common import routing_rule_set
from repro.experiments.registry import run_experiment
from repro.filters.paper_data import TABLE4_ROUTING_STATS


def test_table4_regeneration(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("table4", write_csv=False), rounds=1, iterations=1
    )
    print(result.render())
    assert result.headline["cell_mismatches_vs_paper"] == 0
    assert result.headline["outliers_match_paper"] == 1.0


def test_partition_analysis_largest_filter(benchmark):
    """Unique-value analysis over the 184 909-rule coza filter."""
    rules = routing_rule_set("coza")

    def analyse():
        return partition_unique_entries(rules, "ipv4_dst")

    unique = benchmark.pedantic(analyse, rounds=1, iterations=1)
    stats = TABLE4_ROUTING_STATS["coza"]
    assert len(unique["ipv4_dst/hi"]) == stats.unique_ip_high
    assert len(unique["ipv4_dst/lo"]) == stats.unique_ip_low
