"""Update-path bench — incremental rule install/remove on the live
architecture, and the cycle-model engine itself."""

from repro.core.builder import build_lookup_table
from repro.openflow.actions import OutputAction
from repro.openflow.flow import FlowEntry
from repro.openflow.instructions import WriteActions
from repro.openflow.match import ExactMatch, Match
from repro.update.engine import UpdateEngine
from repro.update.records import UpdateFile


def test_incremental_install_remove(benchmark, mac_bbra):
    """Install + remove a batch of fresh MAC entries on a built table —
    the operation a controller performs on every learning event."""
    table = build_lookup_table(mac_bbra)
    fresh = [
        FlowEntry.build(
            match=Match(
                {
                    "vlan_vid": ExactMatch(0x1000 | (i % 4094 + 1), 13),
                    "eth_dst": ExactMatch(0xF00000000000 | i, 48),
                }
            ),
            priority=1,
            instructions=[WriteActions([OutputAction(i % 48)])],
        )
        for i in range(64)
    ]

    def churn():
        for entry in fresh:
            table.add(entry)
        for entry in fresh:
            table.remove(entry.match, entry.priority)
        return len(table)

    remaining = benchmark(churn)
    assert remaining == len(mac_bbra)


def test_update_engine_cost(benchmark):
    file = UpdateFile(name="bench", materialize=False)
    file.count("structure", n=100_000)
    engine = UpdateEngine()
    cost = benchmark(engine.cost, file)
    assert cost.cycles == 200_000
